"""A direct interpreter for the expanded core language.

This is the compiler's semantic oracle: compiled programs must produce
exactly the value (and output) this interpreter produces.  It runs on
the post-expansion AST, *before* assignment and closure conversion, so
it exercises an independent code path through the system.

Tail calls are executed iteratively (a trampoline inside ``_eval``), so
deeply looping programs do not consume the Python stack; non-tail Scheme
recursion maps onto Python recursion.

Continuations are supported as one-shot escape (upward) continuations
implemented with Python exceptions — sufficient for the ``ctak``
benchmark and documented as an interpreter limitation (the VM supports
full re-invocable continuations via stack copying).
"""

from __future__ import annotations

import itertools
import sys
from typing import Any, Dict, List, Optional

from repro.astnodes import (
    Call,
    CallCC,
    Expr,
    Fix,
    If,
    Lambda,
    Let,
    PrimCall,
    Quote,
    Ref,
    Seq,
    SetBang,
    Var,
)
from repro.frontend.analyze import mark_tail_calls
from repro.frontend.expand import expand_program
from repro.runtime.primitives import PRIMITIVES
from repro.runtime.values import OutputPort, SchemeError
from repro.sexp.reader import read_all


class Environment:
    """A chained run-time environment."""

    __slots__ = ("bindings", "parent")

    def __init__(self, bindings: Dict[Var, Any], parent: Optional["Environment"]) -> None:
        self.bindings = bindings
        self.parent = parent

    def lookup(self, var: Var) -> Any:
        env: Optional[Environment] = self
        while env is not None:
            if var in env.bindings:
                return env.bindings[var]
            env = env.parent
        raise SchemeError(f"unbound variable at run time: {var!r}")

    def assign(self, var: Var, value: Any) -> None:
        env: Optional[Environment] = self
        while env is not None:
            if var in env.bindings:
                env.bindings[var] = value
                return
            env = env.parent
        raise SchemeError(f"assignment to unbound variable: {var!r}")


class InterpClosure:
    """A closure in the interpreter."""

    scheme_procedure = True
    __slots__ = ("params", "body", "env", "name")

    def __init__(self, params: List[Var], body: Expr, env: Environment, name: str) -> None:
        self.params = params
        self.body = body
        self.env = env
        self.name = name

    def __repr__(self) -> str:
        return f"#<procedure {self.name}>"


class EscapeContinuation:
    """A one-shot upward continuation (interpreter only)."""

    scheme_procedure = True
    _tags = itertools.count()
    __slots__ = ("tag",)

    def __init__(self) -> None:
        self.tag = next(EscapeContinuation._tags)

    def __repr__(self) -> str:
        return "#<continuation>"


class _ContinuationInvoked(Exception):
    def __init__(self, tag: int, value: Any) -> None:
        super().__init__("continuation invoked")
        self.tag = tag
        self.value = value


class BudgetExceeded(Exception):
    """The interpreter's optional step budget ran out.

    Distinct from :class:`SchemeError` because it says nothing about the
    program's semantics — the differential-fuzzing oracle uses it to
    discard too-expensive generated programs rather than report them."""


class Interpreter:
    """Evaluates expanded core expressions.

    ``max_steps`` bounds the number of evaluation steps (``_eval`` loop
    iterations); ``None`` means unlimited.  The fuzzing oracle sets it so
    a pathologically expensive generated program cannot hang the run."""

    def __init__(
        self, recursion_limit: int = 200_000, max_steps: Optional[int] = None
    ) -> None:
        self.port = OutputPort()
        self._recursion_limit = recursion_limit
        self.max_steps = max_steps
        self._steps = 0

    def run_source(self, source: str, prelude: bool = True) -> Any:
        """Expand and evaluate a full program text."""
        if prelude:
            from repro.pipeline import PRELUDE

            source = PRELUDE + "\n" + source
        forms = read_all(source)
        expr = expand_program(forms)
        mark_tail_calls(expr)
        return self.run(expr)

    def run(self, expr: Expr) -> Any:
        old_limit = sys.getrecursionlimit()
        if old_limit < self._recursion_limit:
            sys.setrecursionlimit(self._recursion_limit)
        try:
            return self._eval(expr, Environment({}, None))
        finally:
            sys.setrecursionlimit(old_limit)

    # ------------------------------------------------------------------

    def _eval(self, expr: Expr, env: Environment) -> Any:
        max_steps = self.max_steps
        while True:
            if max_steps is not None:
                self._steps += 1
                if self._steps > max_steps:
                    raise BudgetExceeded(
                        f"interpreter exceeded {max_steps} evaluation steps"
                    )
            if isinstance(expr, Quote):
                return expr.value
            if isinstance(expr, Ref):
                return env.lookup(expr.var)
            if isinstance(expr, PrimCall):
                spec = PRIMITIVES[expr.op]
                args = [self._eval(a, env) for a in expr.args]
                return spec.fn(args, self.port)
            if isinstance(expr, If):
                test = self._eval(expr.test, env)
                expr = expr.then if test is not False else expr.otherwise
                continue
            if isinstance(expr, Seq):
                for sub in expr.exprs[:-1]:
                    self._eval(sub, env)
                expr = expr.exprs[-1]
                continue
            if isinstance(expr, Let):
                value = self._eval(expr.rhs, env)
                env = Environment({expr.var: value}, env)
                expr = expr.body
                continue
            if isinstance(expr, Lambda):
                return InterpClosure(expr.params, expr.body, env, expr.name)
            if isinstance(expr, Fix):
                bindings: Dict[Var, Any] = {}
                env = Environment(bindings, env)
                for var, lam in zip(expr.vars, expr.lambdas):
                    bindings[var] = InterpClosure(lam.params, lam.body, env, lam.name)
                expr = expr.body
                continue
            if isinstance(expr, CallCC):
                fn = self._eval(expr.fn, env)
                return self._call_cc(fn)
            if isinstance(expr, Call):
                fn = self._eval(expr.fn, env)
                args = [self._eval(a, env) for a in expr.args]
                result = self._apply_step(fn, args)
                if isinstance(result, _TailStep):
                    expr = result.body
                    env = result.env
                    continue
                return result
            if isinstance(expr, SetBang):
                env.assign(expr.var, self._eval(expr.value, env))
                from repro.sexp.datum import UNSPECIFIED

                return UNSPECIFIED
            raise SchemeError(f"cannot evaluate node {type(expr).__name__}")

    def _apply_step(self, fn: Any, args: List[Any]) -> Any:
        """Begin applying *fn*: returns a _TailStep for closures so the
        caller's loop continues in the callee's body."""
        if isinstance(fn, InterpClosure):
            if len(args) != len(fn.params):
                raise SchemeError(
                    f"{fn.name}: expected {len(fn.params)} argument(s), got {len(args)}"
                )
            env = Environment(dict(zip(fn.params, args)), fn.env)
            return _TailStep(fn.body, env)
        if isinstance(fn, EscapeContinuation):
            if len(args) != 1:
                raise SchemeError("continuation expects exactly 1 value")
            raise _ContinuationInvoked(fn.tag, args[0])
        raise SchemeError("attempt to apply a non-procedure", fn)

    def apply(self, fn: Any, args: List[Any]) -> Any:
        """Fully apply *fn* (used by call/cc)."""
        step = self._apply_step(fn, args)
        if isinstance(step, _TailStep):
            return self._eval(step.body, step.env)
        return step

    def _call_cc(self, fn: Any) -> Any:
        k = EscapeContinuation()
        try:
            return self.apply(fn, [k])
        except _ContinuationInvoked as exc:
            if exc.tag == k.tag:
                return exc.value
            raise


class _TailStep:
    __slots__ = ("body", "env")

    def __init__(self, body: Expr, env: Environment) -> None:
        self.body = body
        self.env = env


def interpret_source(source: str) -> Any:
    """Convenience: run *source*, returning its value."""
    return Interpreter().run_source(source)
