"""The fuzzing loop.

Each iteration *i* of a run seeded *s* generates program ``(s, i)`` and
checks it against the configuration matrix; iterations are independent,
so with ``jobs > 1`` they are distributed over the serve subsystem's
crash-isolated :class:`~repro.serve.pool.WorkerPool` (each worker
checks its program against every configuration — the matrix is the
inner loop, the program stream the outer).  Results are absorbed in
iteration order regardless of completion order, so a run's report is
deterministic for a given seed and iteration count.  A worker that
crashes or wedges fails only its own iteration — it surfaces as a
``worker-*`` failure in the report instead of poisoning the run.

Failures are shrunk (optionally) in the parent process — shrinking
re-runs the oracle against only the configurations that failed, which
makes each delta-debugging probe cheap — and persisted to the corpus.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.config import (
    CompilerConfig,
    allocator_matrix,
    full_matrix,
    shuffle_matrix,
)
from repro.fuzz.corpus import CorpusEntry, save_entry
from repro.fuzz.genprog import GenConfig, ProgramGenerator
from repro.fuzz.oracle import InvalidProgram, check_program
from repro.fuzz.shrink import program_size, shrink_program
from repro.observe.recorder import active_trace, get_flight_recorder


@dataclass
class FuzzFailure:
    """One failing program, before and after shrinking."""

    iteration: int
    source: str
    divergences: List[dict]
    shrunk: Optional[str] = None
    shrunk_size: Optional[int] = None
    corpus_path: Optional[str] = None
    flight_path: Optional[str] = None

    def as_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "source": self.source,
            "divergences": self.divergences,
            "shrunk": self.shrunk,
            "shrunk_size": self.shrunk_size,
            "corpus_path": self.corpus_path,
            "flight_path": self.flight_path,
        }


@dataclass
class FuzzReport:
    """The outcome of one ``repro fuzz`` run."""

    seed: int
    iterations: int = 0
    invalid: int = 0
    configs_checked: int = 0
    shuffle_cycles: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    interesting_saved: List[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "iterations": self.iterations,
            "invalid": self.invalid,
            "configs_checked": self.configs_checked,
            "shuffle_cycles": self.shuffle_cycles,
            "failures": [f.as_dict() for f in self.failures],
            "interesting_saved": self.interesting_saved,
            "elapsed_seconds": round(self.elapsed, 3),
            "ok": self.ok,
        }


@dataclass
class _IterationResult:
    iteration: int
    source: str
    invalid: bool = False
    configs_checked: int = 0
    shuffle_cycles: int = 0
    divergences: List[dict] = field(default_factory=list)
    failing_configs: List[dict] = field(default_factory=list)


# Worker globals (set once per worker via the pool initializer; fork is
# not guaranteed, so state is passed explicitly).
_WORKER_STATE: Dict[str, object] = {}


def _init_worker(
    seed: int,
    gen_config: Optional[GenConfig],
    allocator: Optional[str] = None,
    shuffle: Optional[str] = None,
) -> None:
    _WORKER_STATE["generator"] = ProgramGenerator(seed, gen_config)
    if allocator:
        configs = allocator_matrix(allocator)
    elif shuffle:
        configs = shuffle_matrix(shuffle)
    else:
        configs = full_matrix()
    _WORKER_STATE["configs"] = configs


def _check_iteration(iteration: int) -> _IterationResult:
    generator: ProgramGenerator = _WORKER_STATE["generator"]  # type: ignore[assignment]
    configs: Sequence[CompilerConfig] = _WORKER_STATE["configs"]  # type: ignore[assignment]
    program = generator.generate(iteration)
    result = _IterationResult(iteration=iteration, source=program.source)
    try:
        oracle = check_program(program.source, configs=configs)
    except InvalidProgram:
        result.invalid = True
        return result
    result.configs_checked = oracle.configs_checked
    result.shuffle_cycles = oracle.shuffle_cycles
    result.divergences = [d.as_dict() for d in oracle.divergences]
    result.failing_configs = [d.config.summary() for d in oracle.divergences]
    return result


def run_fuzz(
    seed: int,
    iterations: int = 100,
    time_budget: Optional[float] = None,
    jobs: int = 1,
    shrink: bool = False,
    corpus_dir: Optional[str] = None,
    keep_interesting: int = 0,
    gen_config: Optional[GenConfig] = None,
    on_progress: Optional[Callable[[int, FuzzReport], None]] = None,
    flight_dir: Optional[str] = None,
    allocator: Optional[str] = None,
    shuffle: Optional[str] = None,
) -> FuzzReport:
    """Run the fuzzing loop.

    ``time_budget`` (seconds) stops the run early; with a budget set,
    ``iterations`` is the cap on programs, not a target.  ``on_progress``
    is called after each completed iteration with ``(done, report)``.
    ``flight_dir`` enables flight-recorder dumps: each failure (oracle
    divergence or worker crash) writes the recent iteration timeline
    plus the failing program as a JSON artifact there.  ``allocator``
    restricts the configuration matrix to one binding strategy
    (:func:`repro.config.allocator_matrix`); ``shuffle`` likewise
    restricts it to one shuffle strategy
    (:func:`repro.config.shuffle_matrix`) and is ignored when
    ``allocator`` is given; the default checks the full matrix, which
    sweeps every strategy.
    """
    start = time.monotonic()
    report = FuzzReport(seed=seed)
    recorder = get_flight_recorder()
    interesting_kept = 0

    def out_of_time() -> bool:
        return time_budget is not None and time.monotonic() - start >= time_budget

    def absorb(result: _IterationResult) -> None:
        nonlocal interesting_kept
        report.iterations += 1
        if result.invalid:
            report.invalid += 1
            return
        report.configs_checked += result.configs_checked
        report.shuffle_cycles += result.shuffle_cycles
        recorder.record(
            "fuzz.iteration",
            iteration=result.iteration,
            configs_checked=result.configs_checked,
            divergences=len(result.divergences),
        )
        if result.divergences:
            failure = FuzzFailure(
                iteration=result.iteration,
                source=result.source,
                divergences=result.divergences,
            )
            # worker-* failures (crash/timeout) have no failing configs
            # and no program to shrink against.
            if shrink and result.failing_configs:
                _shrink_failure(failure, result.failing_configs)
            if corpus_dir:
                failure.corpus_path = _persist_failure(failure, seed, corpus_dir)
            if flight_dir:
                kind = result.divergences[0].get("kind", "divergence")
                failure.flight_path = recorder.dump_to(
                    flight_dir,
                    f"fuzz-{kind}",
                    extra={
                        "seed": seed,
                        "iteration": result.iteration,
                        "source": result.source,
                        "divergences": result.divergences,
                        "trace": active_trace(),
                    },
                )
            report.failures.append(failure)
        elif (
            keep_interesting
            and interesting_kept < keep_interesting
            and result.shuffle_cycles > 0
            and corpus_dir
        ):
            interesting_kept += 1
            entry = CorpusEntry(
                source=result.source,
                kind="interesting",
                seed=seed,
                iteration=result.iteration,
                detail=f"shuffle cycles broken: {result.shuffle_cycles}",
            )
            report.interesting_saved.append(save_entry(entry, corpus_dir))
        if on_progress is not None:
            on_progress(report.iterations, report)

    if jobs <= 1:
        _init_worker(seed, gen_config, allocator, shuffle)
        for i in range(iterations):
            if out_of_time():
                break
            absorb(_check_iteration(i))
    else:
        _run_pooled(
            seed,
            iterations,
            jobs,
            gen_config,
            absorb,
            out_of_time,
            flight_dir,
            allocator,
            shuffle,
        )

    report.failures.sort(key=lambda f: f.iteration)
    report.elapsed = time.monotonic() - start
    return report


def _run_pooled(
    seed: int,
    iterations: int,
    jobs: int,
    gen_config: Optional[GenConfig],
    absorb: Callable[[_IterationResult], None],
    out_of_time: Callable[[], bool],
    flight_dir: Optional[str] = None,
    allocator: Optional[str] = None,
    shuffle: Optional[str] = None,
) -> None:
    """Distribute iterations over the serve worker pool.

    Every iteration is submitted up front; results are buffered and
    absorbed in iteration order so the report matches a ``jobs=1`` run.
    When the time budget expires, not-yet-started iterations are
    cancelled (in-flight ones are allowed to finish).  The compile cache
    is disabled — fuzzing never sees the same program twice.
    """
    from repro.serve.pool import WorkerPool

    with WorkerPool(jobs=jobs, cache=False, flight_dir=flight_dir) as pool:
        iteration_of = {}
        for i in range(iterations):
            task_id = pool.submit(
                "fuzz",
                {
                    "seed": seed,
                    "gen_config": gen_config,
                    "iteration": i,
                    "allocator": allocator,
                    "shuffle": shuffle,
                },
            )
            iteration_of[task_id] = i
        buffered: Dict[int, Optional[_IterationResult]] = {}
        next_index = 0
        cancelled = False
        for result in pool.results():
            if not cancelled and out_of_time():
                pool.cancel_pending()
                cancelled = True
            i = iteration_of[result.task_id]
            buffered[i] = _pooled_result(i, result, seed, gen_config)
            while next_index in buffered:
                ready = buffered.pop(next_index)
                next_index += 1
                if ready is not None:
                    absorb(ready)


def _pooled_result(
    iteration: int, result, seed: int, gen_config: Optional[GenConfig]
) -> Optional[_IterationResult]:
    """Translate one pool result into an iteration result (``None`` for
    iterations cancelled by the time budget — they never ran)."""
    if result.ok:
        value = result.value
        return _IterationResult(
            iteration=iteration,
            source=value["source"],
            invalid=value["invalid"],
            configs_checked=value["configs_checked"],
            shuffle_cycles=value["shuffle_cycles"],
            divergences=value["divergences"],
            failing_configs=value["failing_configs"],
        )
    if result.error_kind == "cancelled":
        return None
    # The worker crashed, timed out, or hit an unexpected error.  The
    # program stream is deterministic in (seed, iteration), so the
    # offending source can be regenerated parent-side for the report.
    source = ProgramGenerator(seed, gen_config).generate(iteration).source
    out = _IterationResult(iteration=iteration, source=source)
    out.divergences = [
        {
            "kind": f"worker-{result.error_kind or 'error'}",
            "config": {},
            "expected": None,
            "got": result.error,
        }
    ]
    return out


def _shrink_failure(failure: FuzzFailure, failing_configs: List[dict]) -> None:
    """Delta-debug one failure down to a local minimum, probing only the
    configurations that actually diverged (plus the paper default)."""
    configs = _probe_configs(failing_configs)

    def still_fails(candidate: str) -> bool:
        try:
            return not check_program(candidate, configs=configs).ok
        except InvalidProgram:
            return False

    failure.shrunk = shrink_program(failure.source, still_fails)
    failure.shrunk_size = program_size(failure.shrunk)


def _probe_configs(failing_configs: List[dict]) -> List[CompilerConfig]:
    configs: List[CompilerConfig] = []
    seen = set()
    for summary in failing_configs:
        key = tuple(sorted(summary.items()))
        if key not in seen:
            seen.add(key)
            configs.append(CompilerConfig.from_summary(summary))
    default = CompilerConfig()
    if tuple(sorted(default.summary().items())) not in seen:
        configs.append(default)
    return configs


def _persist_failure(failure: FuzzFailure, seed: int, corpus_dir: str) -> str:
    first = failure.divergences[0] if failure.divergences else {}
    config = None
    if first.get("config"):
        config = CompilerConfig.from_summary(first["config"])
    entry = CorpusEntry(
        source=failure.shrunk or failure.source,
        kind=str(first.get("kind", "failure")),
        seed=seed,
        iteration=failure.iteration,
        config=config,
        detail=f"expected {first.get('expected')!r}, got {first.get('got')!r}",
    )
    return save_entry(entry, corpus_dir)


def replay_entry(
    entry: CorpusEntry, shrink: bool = False
) -> FuzzReport:
    """Re-run one corpus entry against the full matrix (the entry's own
    configuration first, when recorded)."""
    start = time.monotonic()
    configs: List[CompilerConfig] = []
    if entry.config is not None:
        configs.append(entry.config)
    seen = {tuple(sorted(c.summary().items())) for c in configs}
    for config in full_matrix():
        key = tuple(sorted(config.summary().items()))
        if key not in seen:
            seen.add(key)
            configs.append(config)
    report = FuzzReport(seed=entry.seed if entry.seed is not None else -1)
    report.iterations = 1
    try:
        oracle = check_program(entry.source, configs=configs)
    except InvalidProgram as exc:
        from repro.errors import FuzzError

        raise FuzzError(f"corpus program is not interpretable: {exc}") from exc
    report.configs_checked = oracle.configs_checked
    report.shuffle_cycles = oracle.shuffle_cycles
    if oracle.divergences:
        failure = FuzzFailure(
            iteration=entry.iteration or 0,
            source=entry.source,
            divergences=[d.as_dict() for d in oracle.divergences],
        )
        if shrink:
            _shrink_failure(failure, [d.config.summary() for d in oracle.divergences])
        report.failures.append(failure)
    report.elapsed = time.monotonic() - start
    return report
