"""The differential oracle.

One program, many verdicts: the reference interpreter fixes the expected
value and output, then the program is compiled and executed at every
configuration point the caller supplies (by default the full strategy
matrix plus the register sweep, ~90 points).  Beyond value/output
equality, two invariants from the observe layer are cross-checked:

* **counter conservation** — the per-procedure profile deltas must sum
  exactly to the run's global counters (PR 1's conservation property);
* **lazy ≤ late saves** — the revised lazy-save algorithm (§2.1.3) never
  performs more dynamic saves than saving immediately before each call;
  whenever the matrix contains a caller-save ``lazy`` point and its
  ``late`` counterpart, the bound is asserted on the measured counters;
* **vm-fast** — the trace-compiled fast loop and the legacy dispatch
  loop must agree exactly (value, output, counters) on the same
  compiled program; checked on the first few configurations of each
  program to bound cost.  Budget-exceeded runs only assert agreement on
  the error class: the fast loop checks its budget once per trace, so
  the raise point may trail the legacy loop's by up to one trace.

A program the *interpreter* cannot run (wrong arity the generator
slipped through, step budget exceeded) is not a divergence — it raises
:class:`InvalidProgram` and the engine skips it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.astnodes import Expr
from repro.config import CompilerConfig, full_matrix
from repro.errors import CompilerError
from repro.frontend.analyze import mark_tail_calls
from repro.frontend.expand import expand_program
from repro.interp.interpreter import BudgetExceeded, Interpreter
from repro.pipeline import compile_core, run_compiled
from repro.runtime.values import SchemeError
from repro.sexp.reader import ReaderError, read_all
from repro.sexp.writer import write_datum
from repro.vm.machine import VMError

DEFAULT_MAX_INSTRUCTIONS = 5_000_000
DEFAULT_INTERP_STEPS = 2_000_000

#: Configurations per program on which the fast-vs-legacy loop
#: comparison runs (each costs two extra non-debug executions).
FAST_CHECK_LIMIT = 4


class InvalidProgram(Exception):
    """The reference interpreter itself rejected the program; there is
    nothing to compare, so the fuzzer discards it."""


@dataclass
class Divergence:
    """One disagreement between the VM and the reference semantics."""

    kind: str  # value | output | compile-crash | vm-crash | conservation
    #            | save-bound | vm-fast
    config: CompilerConfig
    expected: str
    got: str

    def describe(self) -> str:
        cfg = self.config.summary()
        point = (
            f"save={cfg['save_strategy']} restore={cfg['restore_strategy']} "
            f"shuffle={cfg['shuffle_strategy']} conv={cfg['save_convention']} "
            f"c={cfg['num_arg_regs']} l={cfg['num_temp_regs']}"
        )
        if "allocator" in cfg:
            point += f" alloc={cfg['allocator']}"
        return f"{self.kind} at [{point}]: expected {self.expected!r}, got {self.got!r}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "config": self.config.summary(),
            "expected": self.expected,
            "got": self.got,
        }


@dataclass
class OracleResult:
    """The verdicts for one program across the whole matrix."""

    divergences: List[Divergence] = field(default_factory=list)
    configs_checked: int = 0
    shuffle_cycles: int = 0  # corpus "interestingness" signal
    expected_value: str = ""

    @property
    def ok(self) -> bool:
        return not self.divergences


def interp_reference(
    source: str, max_steps: Optional[int] = DEFAULT_INTERP_STEPS
) -> Tuple[str, str]:
    """Reference (value, output) of *source*, via the interpreter.

    Raises :class:`InvalidProgram` when the interpreter cannot run it."""
    expr = _expand(source)
    return _interp_expr(expr, max_steps)


def _expand(source: str) -> Expr:
    try:
        forms = read_all(source)
        expr = expand_program(forms)
        mark_tail_calls(expr)
    except (ReaderError, CompilerError) as exc:
        raise InvalidProgram(f"program does not expand: {exc}") from exc
    return expr


def _interp_expr(expr: Expr, max_steps: Optional[int]) -> Tuple[str, str]:
    interp = Interpreter(max_steps=max_steps)
    try:
        value = interp.run(expr)
    except (SchemeError, BudgetExceeded, RecursionError) as exc:
        raise InvalidProgram(f"reference interpreter failed: {exc}") from exc
    return _normalize(write_datum(value)), _normalize(interp.port.contents())


# Procedures (and other opaque objects) print differently in the
# interpreter and the VM — `#<interpclosure>` vs `#<vmclosure>` — which
# is a representation detail, not a semantic divergence.
_OPAQUE = re.compile(r"#<[^>]*>")


def _normalize(text: str) -> str:
    return _OPAQUE.sub("#<procedure>", text)


def _canon_output(text: str) -> str:
    """Order-insensitive canonical form of a program's output.

    Scheme leaves call-operand evaluation order unspecified, and the
    shuffler exploits that freedom (each strategy picks its own order),
    so ``display`` calls reached from sibling operands may legitimately
    interleave differently than under the left-to-right reference
    interpreter.  Comparing the sorted character multiset still catches
    dropped, duplicated, or wrong output — only pure reorderings are
    forgiven."""
    return "".join(sorted(text))


def check_program(
    source: str,
    configs: Optional[Sequence[CompilerConfig]] = None,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    interp_steps: Optional[int] = DEFAULT_INTERP_STEPS,
    fail_fast: bool = False,
    check_invariants: bool = True,
) -> OracleResult:
    """Differentially test one program.

    The program is expanded once; each configuration compiles its own
    copy of the tree (``compile_core``) and runs under the poison-checking
    debug VM with a per-run instruction budget.
    """
    expr = _expand(source)
    expected_value, expected_output = _interp_expr(expr, interp_steps)

    if configs is None:
        configs = full_matrix()
    result = OracleResult(expected_value=expected_value)
    saves_by_point: Dict[tuple, Dict[str, int]] = {}
    fast_checks = 0

    for config in configs:
        result.configs_checked += 1
        try:
            compiled = compile_core(expr, config, copy=True)
        except (CompilerError, RecursionError) as exc:
            result.divergences.append(
                Divergence("compile-crash", config, expected_value, f"{exc}")
            )
            if fail_fast:
                return result
            continue
        try:
            run = run_compiled(
                compiled,
                debug=True,
                max_instructions=max_instructions,
                profile=check_invariants,
            )
        except (VMError, SchemeError, RecursionError) as exc:
            result.divergences.append(
                Divergence("vm-crash", config, expected_value, f"{exc}")
            )
            if fail_fast:
                return result
            continue

        got_value = _normalize(write_datum(run.value))
        if got_value != expected_value:
            result.divergences.append(
                Divergence("value", config, expected_value, got_value)
            )
            if fail_fast:
                return result
        got_output = _normalize(run.output)
        if _canon_output(got_output) != _canon_output(expected_output):
            result.divergences.append(
                Divergence("output", config, expected_output, run.output)
            )
            if fail_fast:
                return result

        if check_invariants:
            problem = _conservation_problem(run)
            if problem is not None:
                result.divergences.append(
                    Divergence("conservation", config, problem[0], problem[1])
                )
                if fail_fast:
                    return result
            cfg = config.summary()
            if cfg["save_convention"] == "caller" and cfg["save_strategy"] in (
                "lazy",
                "late",
            ):
                # The bound only holds between points that differ in
                # nothing but the save strategy — in particular the
                # binding allocator must match, since different register
                # assignments legitimately change the save counts.
                point = (
                    cfg["restore_strategy"],
                    cfg["shuffle_strategy"],
                    cfg["num_arg_regs"],
                    cfg["num_temp_regs"],
                    cfg.get("allocator", "lazy"),
                )
                saves_by_point.setdefault(point, {})[cfg["save_strategy"]] = (
                    run.counters.saves
                )
        if check_invariants and fast_checks < FAST_CHECK_LIMIT:
            fast_checks += 1
            problem = _vm_fast_problem(compiled, max_instructions)
            if problem is not None:
                result.divergences.append(
                    Divergence("vm-fast", config, problem[0], problem[1])
                )
                if fail_fast:
                    return result
        result.shuffle_cycles += _count_shuffle_cycles(compiled)

    if check_invariants:
        for point, saves in sorted(saves_by_point.items()):
            if "lazy" in saves and "late" in saves and saves["lazy"] > saves["late"]:
                config = CompilerConfig(
                    save_strategy="lazy",
                    restore_strategy=point[0],
                    shuffle_strategy=point[1],
                    num_arg_regs=point[2],
                    num_temp_regs=point[3],
                    allocator=point[4],
                )
                result.divergences.append(
                    Divergence(
                        "save-bound",
                        config,
                        f"saves <= {saves['late']} (late)",
                        f"{saves['lazy']} (lazy)",
                    )
                )
    return result


def _vm_fast_problem(compiled, max_instructions: int) -> Optional[Tuple[str, str]]:
    """The fast/legacy loop agreement invariant for one compiled
    program: identical value, output, and counters, or the same error.

    Budget errors (``VMError``) compare by class only — the fast loop's
    once-per-trace budget check may raise a few instructions after the
    legacy loop's exact check."""

    def attempt(vm_fast: bool):
        try:
            run = run_compiled(
                compiled, max_instructions=max_instructions, vm_fast=vm_fast
            )
            return ("ok", run)
        except VMError:
            return ("budget", None)
        except SchemeError as exc:
            return ("error", str(exc))
        except RecursionError:
            return ("recursion", None)

    slow_kind, slow = attempt(False)
    fast_kind, fast = attempt(True)
    if slow_kind != fast_kind:
        return (f"legacy: {slow_kind}", f"fast: {fast_kind}")
    if slow_kind == "ok":
        slow_value = write_datum(slow.value)
        fast_value = write_datum(fast.value)
        if slow_value != fast_value:
            return (f"value {slow_value}", f"value {fast_value}")
        if slow.output != fast.output:
            return (f"output {slow.output!r}", f"output {fast.output!r}")
        slow_counts = slow.counters.as_dict()
        fast_counts = fast.counters.as_dict()
        if slow_counts != fast_counts:
            diff = {
                key: (slow_counts.get(key), fast_counts.get(key))
                for key in set(slow_counts) | set(fast_counts)
                if slow_counts.get(key) != fast_counts.get(key)
            }
            return ("counters equal", f"counters differ: {diff}")
    elif slow_kind == "error" and slow != fast:
        return (f"error {slow}", f"error {fast}")
    return None


def _conservation_problem(run) -> Optional[Tuple[str, str]]:
    """PR 1's conservation property, checked per run: profile deltas must
    sum exactly to the global counters."""
    profile = run.profile
    if profile is None:
        return None
    totals = profile.totals()
    counters = run.counters
    total_refs = sum(totals["stack_reads"].values()) + sum(
        totals["stack_writes"].values()
    )
    for key, expected, got in (
        ("instructions", counters.instructions, totals["instructions"]),
        ("cycles", counters.cycles, totals["cycles"]),
        ("stack_refs", counters.total_stack_refs, total_refs),
        ("saves", counters.saves, totals["stack_writes"].get("save", 0)),
        ("restores", counters.restores, totals["stack_reads"].get("restore", 0)),
        ("calls", counters.calls, totals["calls"]),
        ("tail_calls", counters.tail_calls, totals["tail_calls"]),
    ):
        if got != expected:
            return (f"{key}={expected} (counters)", f"{key}={got} (profile sum)")
    return None


def _count_shuffle_cycles(compiled) -> int:
    """Shuffle cycles the allocator broke in this compilation — the
    signal ``corpus.py`` uses to keep 'interesting' seeds."""
    from repro.astnodes import Call, walk

    cycles = 0
    for code in compiled.codes:
        for node in walk(code.body):
            if (
                isinstance(node, Call)
                and node.shuffle_plan is not None
                and node.shuffle_plan.had_cycle
            ):
                cycles += 1
    return cycles
