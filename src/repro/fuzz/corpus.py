"""Replayable corpus artifacts.

Every failure (and, optionally, every "interesting" seed — one whose
compilation broke shuffle cycles) is persisted under ``fuzzcorpus/`` as
a plain ``.sexp`` file: a commented metadata header followed by the
program itself, so an entry is simultaneously machine-replayable
(``repro fuzz --replay PATH``) and directly runnable
(``repro run PATH``)::

    ;; repro-fuzz v1
    ;; kind: value
    ;; seed: 42
    ;; iteration: 17
    ;; config: {"save_strategy": "lazy", ...}
    (define (h0 fuel a b) ...)
    (mainf 3 -7 11)

Header lines are ``;; key: value``; unknown keys are preserved in
``CorpusEntry.extra``.  A file without the magic first line, or whose
body is not readable s-expression syntax, raises
:class:`repro.errors.FuzzError` — the CLI turns that into a one-line
diagnostic, never a traceback.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.config import CompilerConfig
from repro.errors import FuzzError
from repro.sexp.reader import ReaderError, read_all

MAGIC = ";; repro-fuzz v1"
DEFAULT_CORPUS_DIR = "fuzzcorpus"


@dataclass
class CorpusEntry:
    """One persisted program with its provenance."""

    source: str
    kind: str = "failure"  # failure | interesting | manual
    seed: Optional[int] = None
    iteration: Optional[int] = None
    config: Optional[CompilerConfig] = None
    detail: str = ""
    extra: Dict[str, str] = field(default_factory=dict)

    def file_name(self) -> str:
        digest = hashlib.sha256(self.source.encode()).hexdigest()[:10]
        seed = "x" if self.seed is None else str(self.seed)
        iteration = "x" if self.iteration is None else str(self.iteration)
        return f"{self.kind}-s{seed}-i{iteration}-{digest}.sexp"

    def render(self) -> str:
        lines = [MAGIC, f";; kind: {self.kind}"]
        if self.seed is not None:
            lines.append(f";; seed: {self.seed}")
        if self.iteration is not None:
            lines.append(f";; iteration: {self.iteration}")
        if self.config is not None:
            lines.append(f";; config: {json.dumps(self.config.summary())}")
        if self.detail:
            lines.append(f";; detail: {self.detail}")
        for key in sorted(self.extra):
            lines.append(f";; {key}: {self.extra[key]}")
        lines.append(self.source)
        return "\n".join(lines) + "\n"


def save_entry(entry: CorpusEntry, directory: str = DEFAULT_CORPUS_DIR) -> str:
    """Write *entry* under *directory*; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, entry.file_name())
    with open(path, "w") as handle:
        handle.write(entry.render())
    return path


def load_entry(path: str) -> CorpusEntry:
    """Parse a corpus file back into a :class:`CorpusEntry`.

    Raises :class:`FuzzError` on anything malformed — missing magic,
    broken header, unreadable program body, unreadable file."""
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        raise FuzzError(f"cannot read corpus file {path}: {exc}") from exc

    lines = text.splitlines()
    if not lines or lines[0].strip() != MAGIC:
        raise FuzzError(
            f"{path} is not a repro-fuzz corpus file (missing '{MAGIC}' header)"
        )
    entry = CorpusEntry(source="", kind="manual")
    body_start = 1
    for i, line in enumerate(lines[1:], start=1):
        if not line.startswith(";;"):
            body_start = i
            break
        body_start = i + 1
        stripped = line[2:].strip()
        if not stripped:
            continue
        key, sep, value = stripped.partition(":")
        if not sep:
            raise FuzzError(f"{path}:{i + 1}: malformed header line {line!r}")
        key, value = key.strip(), value.strip()
        if key == "kind":
            entry.kind = value
        elif key == "seed":
            entry.seed = _parse_int(path, i, key, value)
        elif key == "iteration":
            entry.iteration = _parse_int(path, i, key, value)
        elif key == "config":
            try:
                entry.config = CompilerConfig.from_summary(json.loads(value))
            except (ValueError, TypeError) as exc:
                raise FuzzError(
                    f"{path}:{i + 1}: bad config header: {exc}"
                ) from exc
        elif key == "detail":
            entry.detail = value
        else:
            entry.extra[key] = value

    source = "\n".join(lines[body_start:]).strip()
    if not source:
        raise FuzzError(f"{path}: corpus entry has no program body")
    try:
        if not read_all(source):
            raise FuzzError(f"{path}: corpus entry has no program body")
    except ReaderError as exc:
        raise FuzzError(f"{path}: unreadable program body: {exc}") from exc
    entry.source = source
    return entry


def _parse_int(path: str, line: int, key: str, value: str) -> int:
    try:
        return int(value)
    except ValueError as exc:
        raise FuzzError(
            f"{path}:{line + 1}: header {key!r} is not an integer: {value!r}"
        ) from exc
