"""Seeded, grammar-aware program generation.

Programs are generated *terminating by construction*: every recursive
helper threads an explicit fuel parameter, self-calls strictly decrease
it behind a ``(<= fuel 0)`` guard, and cross-helper calls only go to
earlier helpers (the call graph is a DAG plus fuel-bounded self-loops).
That discipline matters because the reference interpreter has no step
budget — an accidentally-divergent program would hang the oracle, not
fail it.

The grammar is biased toward the shapes the allocator finds hard; see
DESIGN.md §5.2 for the mapping from each bias to the paper section it
stresses:

* non-tail calls inside ``if`` tests (§2.1.3's St/Sf split),
* ``and``/``or`` nested in tests (expanded into nested ``if``),
* self- and cross-calls whose arguments are *permutations/rotations of
  the parameters* — bare register-to-register moves that force shuffle
  cycles (§2.3, §3.1),
* deep non-tail operator nests (save/restore chains, §2.1–2.2),
* high register pressure: more simultaneously-live temporaries than any
  configuration has registers, all used after an embedded call (spill
  paths in every allocator strategy, wide save sets),
* ``call/cc`` escapes (the stack-copying continuation path),
* arities above ``num_arg_regs`` so operands spill to outgoing stack
  slots (§3's calling convention).

Determinism: one :class:`random.Random` seeded from a string derived
from the user seed drives every choice; the same seed always yields the
same program text.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

_FUEL = "fuel"


@dataclass(frozen=True)
class GenConfig:
    """Knobs for the generator; defaults are tuned so a program checks
    in a few hundred milliseconds against the full config matrix."""

    max_helpers: int = 4
    min_helpers: int = 2
    max_arity: int = 8  # value params, beyond the 6 argument registers
    max_depth: int = 4
    max_fuel: int = 5
    # Per-shape weights (relative); the hard shapes are deliberately hot.
    weights: Tuple[Tuple[str, int], ...] = (
        ("leaf", 3),
        ("arith", 5),
        ("if-plain", 2),
        ("if-call-test", 4),
        ("if-andor-test", 4),
        ("let", 3),
        ("call-helper", 5),
        ("call-permuted", 5),
        ("deep-nest", 3),
        ("pressure", 4),
        ("callcc", 2),
        ("begin", 1),
        ("setbang", 1),
        ("display", 1),
    )


@dataclass
class GeneratedProgram:
    """One generated program plus the provenance needed to replay it."""

    source: str
    seed: int
    index: int
    helper_arities: List[int] = field(default_factory=list)


@dataclass
class _Helper:
    name: str
    arity: int  # value parameters (fuel excluded)
    params: List[str]


class ProgramGenerator:
    """Generates one program per :meth:`generate` call, deterministically
    from ``(seed, index)``."""

    def __init__(self, seed: int, config: Optional[GenConfig] = None) -> None:
        self.seed = seed
        self.config = config or GenConfig()
        self._shapes = [name for name, _ in self.config.weights]
        self._weights = [w for _, w in self.config.weights]

    def generate(self, index: int = 0) -> GeneratedProgram:
        rng = random.Random(f"repro-fuzz:{self.seed}:{index}")
        helpers: List[_Helper] = []
        forms: List[str] = []
        n_helpers = rng.randint(self.config.min_helpers, self.config.max_helpers)
        for k in range(n_helpers):
            helper = self._make_helper(rng, k, helpers)
            forms.append(self._render_helper(rng, helper, helpers))
            helpers.append(helper)
        main = self._gen_expr(
            rng,
            depth=self.config.max_depth,
            scope=["seed-a", "seed-b", "seed-c"],
            helpers=helpers,
            self_helper=None,
        )
        forms.append(f"(define (mainf seed-a seed-b seed-c) {main})")
        args = " ".join(str(rng.randint(-20, 20)) for _ in range(3))
        forms.append(f"(mainf {args})")
        return GeneratedProgram(
            source="\n".join(forms),
            seed=self.seed,
            index=index,
            helper_arities=[h.arity for h in helpers],
        )

    # -- helpers -----------------------------------------------------------

    def _make_helper(
        self, rng: random.Random, k: int, earlier: List[_Helper]
    ) -> _Helper:
        # Bias one helper per program toward arity > num_arg_regs so some
        # operands always travel through outgoing stack slots.
        if k == 1 or (k > 1 and rng.random() < 0.2):
            arity = rng.randint(7, self.config.max_arity)
        else:
            arity = rng.randint(2, 4)
        params = [f"p{k}{chr(ord('a') + i)}" for i in range(arity)]
        return _Helper(name=f"h{k}", arity=arity, params=params)

    def _render_helper(
        self, rng: random.Random, helper: _Helper, earlier: List[_Helper]
    ) -> str:
        scope = [_FUEL, *helper.params]
        base = self._gen_expr(
            rng,
            depth=rng.randint(1, 2),
            scope=helper.params,
            helpers=earlier,
            self_helper=None,
        )
        body = self._gen_expr(
            rng,
            depth=self.config.max_depth - 1,
            scope=scope,
            helpers=earlier,
            self_helper=helper,
        )
        header = " ".join([helper.name, _FUEL, *helper.params])
        return f"(define ({header})\n  (if (<= {_FUEL} 0)\n      {base}\n      {body}))"

    # -- expressions -------------------------------------------------------

    def _gen_expr(
        self,
        rng: random.Random,
        depth: int,
        scope: List[str],
        helpers: List[_Helper],
        self_helper: Optional[_Helper],
    ) -> str:
        if depth <= 0:
            return self._leaf(rng, scope)
        shape = rng.choices(self._shapes, weights=self._weights, k=1)[0]
        sub = lambda d=depth - 1: self._gen_expr(  # noqa: E731
            rng, d, scope, helpers, self_helper
        )
        if shape == "leaf":
            return self._leaf(rng, scope)
        if shape == "arith":
            op = rng.choice(["+", "-", "*", "+", "-"])
            return f"({op} {sub()} {sub()})"
        if shape == "if-plain":
            return f"(if {self._bool(rng, 1, scope, helpers, self_helper)} {sub()} {sub()})"
        if shape == "if-call-test":
            # The §2.1.3 shape: a non-tail call in the test position, so
            # both save sets St/Sf of the join matter.
            test = self._bool(
                rng, 1, scope, helpers, self_helper, force_call=True
            )
            return f"(if {test} {sub()} {sub()})"
        if shape == "if-andor-test":
            combo = rng.choice(["and", "or"])
            a = self._bool(rng, 1, scope, helpers, self_helper)
            b = self._bool(rng, 1, scope, helpers, self_helper)
            return f"(if ({combo} {a} {b}) {sub()} {sub()})"
        if shape == "let":
            var = f"t{rng.randint(0, 99)}"
            while var in scope:
                var = f"t{rng.randint(0, 99)}"
            rhs = sub()
            inner = self._gen_expr(
                rng, depth - 1, [*scope, var], helpers, self_helper
            )
            return f"(let (({var} {rhs})) {inner})"
        if shape == "call-helper":
            call = self._helper_call(rng, depth, scope, helpers, self_helper)
            if call is not None:
                return call
            return f"(+ {sub()} {sub()})"
        if shape == "call-permuted":
            call = self._permuted_call(rng, scope, helpers, self_helper)
            if call is not None:
                return call
            return f"(- {sub()} {sub()})"
        if shape == "deep-nest":
            # Deep non-tail chains: every inner call's live values must be
            # saved across the outer ones.
            return f"(+ (+ {sub()} {sub()}) (- {sub()} {sub()}))"
        if shape == "pressure":
            return self._pressure(rng, depth, scope, helpers, self_helper)
        if shape == "callcc":
            k = f"k{rng.randint(0, 99)}"
            val = sub()
            if rng.random() < 0.5:
                test = self._bool(rng, 1, scope, helpers, self_helper)
                return f"(call/cc (lambda ({k}) (if {test} ({k} {val}) {sub()})))"
            return f"(+ {rng.randint(1, 9)} (call/cc (lambda ({k}) ({k} {val}))))"
        if shape == "begin":
            return f"(begin {sub()} {sub()})"
        if shape == "setbang":
            var = f"s{rng.randint(0, 99)}"
            inner_scope = [*scope, var]
            update = self._gen_expr(rng, depth - 1, inner_scope, helpers, self_helper)
            return (
                f"(let (({var} {self._leaf(rng, scope)})) "
                f"(begin (set! {var} {update}) {var}))"
            )
        if shape == "display":
            return f"(begin (display {sub()}) {sub()})"
        raise AssertionError(f"unknown shape {shape}")  # pragma: no cover

    def _pressure(
        self,
        rng: random.Random,
        depth: int,
        scope: List[str],
        helpers: List[_Helper],
        self_helper: Optional[_Helper],
    ) -> str:
        """The register-pressure shape: bind more simultaneous
        temporaries than any configuration has registers (the sweep
        bottoms out at c=0, l=0), then use *every one of them after* an
        embedded call.  All the temporaries' live ranges overlap each
        other and cross the call, so allocators must exercise their
        spill paths (linear scan's second chance, graph coloring's
        iterated spill rounds) and the save machinery must carry a wide
        live set across the call."""
        n = rng.randint(4, 9)
        temps: List[str] = []
        while len(temps) < n:
            var = f"q{rng.randint(0, 99)}"
            if var not in scope and var not in temps:
                temps.append(var)
        # The expression every temporary must survive: a helper call
        # when one is available, else a nested arithmetic chain.
        middle = self._helper_call(rng, depth, scope, helpers, self_helper)
        if middle is None:
            middle = self._gen_expr(rng, 1, scope, helpers, self_helper)
        # Uses after the call, one per temporary, alternating ops so the
        # chain never collapses to something a simplifier could narrow.
        body = middle
        for i, var in enumerate(temps):
            op = "+" if i % 2 == 0 else "-"
            body = f"({op} {var} {body})"
        for var in reversed(temps):
            rhs = self._leaf(rng, scope)
            if rng.random() < 0.3:
                rhs = f"(+ {rhs} {self._leaf(rng, scope)})"
            body = f"(let (({var} {rhs})) {body})"
        return body

    def _leaf(self, rng: random.Random, scope: List[str]) -> str:
        value_params = [v for v in scope if v != _FUEL]
        if value_params and rng.random() < 0.6:
            return rng.choice(value_params)
        return str(rng.randint(-30, 30))

    def _bool(
        self,
        rng: random.Random,
        depth: int,
        scope: List[str],
        helpers: List[_Helper],
        self_helper: Optional[_Helper],
        force_call: bool = False,
    ) -> str:
        if force_call:
            call = self._helper_call(rng, depth, scope, helpers, self_helper)
            a = call if call is not None else self._leaf(rng, scope)
        else:
            a = self._gen_expr(rng, depth, scope, helpers, self_helper)
        b = self._leaf(rng, scope)
        op = rng.choice(["<", ">", "=", "<=", ">="])
        base = f"({op} {a} {b})"
        wrap = rng.random()
        if wrap < 0.2:
            return f"(not {base})"
        if wrap < 0.35:
            pred = rng.choice(["odd?", "even?", "zero?"])
            return f"({rng.choice(['and', 'or'])} {base} ({pred} {self._leaf(rng, scope)}))"
        return base

    def _helper_call(
        self,
        rng: random.Random,
        depth: int,
        scope: List[str],
        helpers: List[_Helper],
        self_helper: Optional[_Helper],
    ) -> Optional[str]:
        """A call to an earlier helper (literal fuel) or a fuel-decrementing
        self-call; argument expressions are generated at reduced depth."""
        candidates: List[Tuple[_Helper, bool]] = [(h, False) for h in helpers]
        if self_helper is not None:
            candidates.append((self_helper, True))
            candidates.append((self_helper, True))  # favor recursion
        if not candidates:
            return None
        helper, is_self = rng.choice(candidates)
        fuel = f"(- {_FUEL} 1)" if is_self else str(rng.randint(0, 3))
        args = [
            self._gen_expr(rng, min(depth - 1, 1), scope, helpers, None)
            for _ in range(helper.arity)
        ]
        return f"({helper.name} {fuel} {' '.join(args)})"

    def _permuted_call(
        self,
        rng: random.Random,
        scope: List[str],
        helpers: List[_Helper],
        self_helper: Optional[_Helper],
    ) -> Optional[str]:
        """The shuffle-cycle shape: call a helper with a permutation or
        rotation of in-scope variables as *bare references*, so register
        arguments must be shuffled among themselves (§2.3)."""
        value_params = [v for v in scope if v != _FUEL]
        candidates: List[Tuple[_Helper, bool]] = []
        if self_helper is not None and self_helper.arity <= len(value_params):
            candidates.extend([(self_helper, True)] * 2)
        for h in helpers:
            if h.arity <= len(value_params):
                candidates.append((h, False))
        if not candidates:
            return None
        helper, is_self = rng.choice(candidates)
        picks = list(value_params)
        if is_self and len(picks) >= helper.arity:
            # A rotation/permutation of the helper's own parameters keeps
            # every operand register-to-register: the pure cycle case.
            picks = picks[: helper.arity]
            if rng.random() < 0.5:
                rot = rng.randrange(1, max(2, len(picks)))
                picks = picks[rot:] + picks[:rot]
            else:
                rng.shuffle(picks)
        else:
            rng.shuffle(picks)
            picks = picks[: helper.arity]
            while len(picks) < helper.arity:
                picks.append(str(rng.randint(-9, 9)))
        fuel = f"(- {_FUEL} 1)" if is_self else str(rng.randint(0, 2))
        return f"({helper.name} {fuel} {' '.join(picks)})"


def generate_program(
    seed: int, index: int = 0, config: Optional[GenConfig] = None
) -> GeneratedProgram:
    """Convenience: the *index*-th program of the stream seeded *seed*."""
    return ProgramGenerator(seed, config).generate(index)
