"""``repro.fuzz`` — grammar-aware differential fuzzing.

The paper's claim is that lazy saves, eager restores, and greedy
shuffling are *semantics-preserving* at every point of the
configuration space.  This subsystem makes that claim executable:

* :mod:`repro.fuzz.genprog` — a seeded generator of core-language
  programs biased toward the allocator's hard shapes (calls in ``if``
  tests, ``and``/``or`` in tests, argument permutations that force
  shuffle cycles, deep non-tail chains, ``call/cc``, high arity).
* :mod:`repro.fuzz.oracle` — runs each program through the reference
  interpreter and through the compiled VM across the full strategy
  matrix, cross-checking values, output, counter conservation, and the
  lazy ≤ late save bound.
* :mod:`repro.fuzz.shrink` — deterministic delta debugging that reduces
  a failing program to a local minimum.
* :mod:`repro.fuzz.corpus` — replayable ``.sexp`` artifacts under
  ``fuzzcorpus/``.
* :mod:`repro.fuzz.engine` — the fuzzing loop (sequential or
  ``multiprocessing``) behind ``repro fuzz``.
"""

from repro.fuzz.corpus import CorpusEntry, load_entry, save_entry
from repro.fuzz.engine import FuzzFailure, FuzzReport, run_fuzz
from repro.fuzz.genprog import GenConfig, ProgramGenerator, generate_program
from repro.fuzz.oracle import (
    Divergence,
    InvalidProgram,
    OracleResult,
    check_program,
    interp_reference,
)
from repro.fuzz.shrink import shrink_program, sexp_size

__all__ = [
    "CorpusEntry",
    "Divergence",
    "FuzzFailure",
    "FuzzReport",
    "GenConfig",
    "InvalidProgram",
    "OracleResult",
    "ProgramGenerator",
    "check_program",
    "generate_program",
    "interp_reference",
    "load_entry",
    "run_fuzz",
    "save_entry",
    "sexp_size",
    "shrink_program",
]
