"""Deterministic delta-debugging minimizer.

Given a failing program and a ``still_fails`` predicate, reduce the
program to a *local minimum*: no single applicable transformation keeps
it failing.  Transformations are tried in a fixed order, so the same
input always shrinks to the same output:

1. drop a whole top-level form,
2. replace a subexpression by one of its own subexpressions (hoisting),
3. replace a subexpression by an atom (``0``, ``1``, ``#f``, ``#t``),
4. drop an element of a ``begin``/operator body.

Every accepted step strictly decreases the s-expression node count, so
termination is structural.  Candidates that break the program (unbound
variables, wrong arity) are rejected by the predicate itself: the oracle
treats interpreter-invalid programs as non-failures.

The shrinker works on a plain nested-list view of the program (symbols
and numbers at the leaves), rendered back to text with the standard
writer, so shrunk artifacts are replayable corpus entries.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.sexp.datum import NIL, Pair, Symbol, list_to_pairs
from repro.sexp.reader import read_all
from repro.sexp.writer import write_datum

_ATOMS = (0, 1, False, True)
# Forms whose head position must not be replaced/hoisted away.
_HEADS = {
    "define",
    "if",
    "let",
    "lambda",
    "begin",
    "and",
    "or",
    "not",
    "set!",
    "quote",
    "cond",
    "do",
    "letrec",
}


def _to_tree(datum: Any) -> Any:
    """Reader datum -> nested Python lists (proper lists only; dotted
    pairs and vectors stay opaque leaves)."""
    if isinstance(datum, Pair):
        items: List[Any] = []
        node = datum
        while isinstance(node, Pair):
            items.append(_to_tree(node.car))
            node = node.cdr
        if node is NIL:
            return items
        return datum  # dotted pair: leave as an opaque leaf
    return datum


def _to_datum(tree: Any) -> Any:
    if isinstance(tree, list):
        return list_to_pairs([_to_datum(item) for item in tree])
    return tree


def render_forms(forms: List[Any]) -> str:
    """Nested-list forms back to program text."""
    return "\n".join(write_datum(_to_datum(form)) for form in forms)


def sexp_size(tree: Any) -> int:
    """Node count of one form: every atom and every list is one node."""
    if isinstance(tree, list):
        return 1 + sum(sexp_size(item) for item in tree)
    return 1


def program_size(source: str) -> int:
    """Total s-expression node count of *source*."""
    return sum(sexp_size(_to_tree(d)) for d in read_all(source))


def shrink_program(
    source: str,
    still_fails: Callable[[str], bool],
    max_steps: int = 5000,
) -> str:
    """Minimize *source* while ``still_fails(candidate)`` holds.

    Returns the reduced program text (the original if nothing shrank).
    ``max_steps`` bounds *accepted* reductions — a safety valve, not a
    tuning knob; node count strictly decreases per step."""
    forms = [_to_tree(d) for d in read_all(source)]
    steps = 0
    progress = True
    while progress and steps < max_steps:
        progress = False
        # 1. Drop top-level forms (never below one form).
        if len(forms) > 1:
            for i in range(len(forms)):
                candidate = forms[:i] + forms[i + 1 :]
                if still_fails(render_forms(candidate)):
                    forms = candidate
                    steps += 1
                    progress = True
                    break
            if progress:
                continue
        # 2./3./4. In-place expression reductions, first position first.
        replaced = _try_reduce_forms(forms, still_fails)
        if replaced is not None:
            forms = replaced
            steps += 1
            progress = True
    return render_forms(forms)


def _try_reduce_forms(
    forms: List[Any], still_fails: Callable[[str], bool]
) -> Optional[List[Any]]:
    """Try every single-node reduction, in deterministic pre-order over
    form index then node path; return the first accepted variant."""
    for i, form in enumerate(forms):
        for path in _paths(form):
            node = _get(form, path)
            for replacement in _replacements(form, path, node):
                new_form = _set(form, path, replacement)
                candidate = forms[:i] + [new_form] + forms[i + 1 :]
                if still_fails(render_forms(candidate)):
                    return candidate
    return None


def _paths(tree: Any, prefix: Tuple[int, ...] = ()) -> List[Tuple[int, ...]]:
    """Pre-order paths to every reducible node (the root form itself is
    excluded: top-level reduction is the drop-a-form rule)."""
    out: List[Tuple[int, ...]] = []
    if isinstance(tree, list):
        for idx, child in enumerate(tree):
            child_path = prefix + (idx,)
            out.append(child_path)
            out.extend(_paths(child, child_path))
    return out


def _get(tree: Any, path: Tuple[int, ...]) -> Any:
    for idx in path:
        tree = tree[idx]
    return tree


def _set(tree: Any, path: Tuple[int, ...], value: Any) -> Any:
    if not path:
        return value
    copy = list(tree)
    copy[path[0]] = _set(copy[path[0]], path[1:], value)
    return copy


def _is_head_position(tree: Any, path: Tuple[int, ...]) -> bool:
    """True when *path* points at a keyword/operator head or a binding
    skeleton we must not rewrite into an expression."""
    if not path:
        return True
    parent = _get(tree, path[:-1]) if len(path) > 1 else tree
    node = _get(tree, path)
    if path[-1] == 0:
        return True  # operator/keyword position
    if isinstance(parent, list) and parent and isinstance(parent[0], Symbol):
        head = parent[0].name
        # (define (name args...) body): position 1 is the signature;
        # (let (bindings) body) / (lambda (params) body) likewise.
        if head in ("define", "let", "lambda", "letrec", "do") and path[-1] == 1:
            return True
        if head == "set!" and path[-1] == 1:
            return True
    # Anything *inside* a signature/binding-list skeleton is off limits
    # except binding right-hand sides, which _replacements handles by
    # only offering expression replacements at expression positions; to
    # stay conservative we block descendants of signatures entirely.
    return _inside_signature(tree, path)


def _inside_signature(tree: Any, path: Tuple[int, ...]) -> bool:
    for depth in range(1, len(path)):
        parent = _get(tree, path[: depth - 1]) if depth > 1 else tree
        if (
            isinstance(parent, list)
            and parent
            and isinstance(parent[0], Symbol)
            and parent[0].name in ("define", "lambda")
            and path[depth - 1] == 1
        ):
            return True
    return False


def _replacements(form: Any, path: Tuple[int, ...], node: Any) -> List[Any]:
    """Candidate replacements for *node*, smallest-first."""
    if _is_head_position(form, path):
        return []
    out: List[Any] = []
    node_size = sexp_size(node)
    if node_size > 1:
        # Atoms first (max reduction), then shortened variadic bodies,
        # then hoisted subexpressions.
        out.extend(_ATOMS)
        if isinstance(node, list):
            if (
                node
                and isinstance(node[0], Symbol)
                and node[0].name in ("begin", "and", "or")
                and len(node) > 2
            ):
                for idx in range(1, len(node)):
                    out.append(node[:idx] + node[idx + 1 :])
            for idx, child in enumerate(node):
                if idx == 0 and isinstance(child, Symbol):
                    continue
                if sexp_size(child) < node_size:
                    out.append(child)
    else:
        # An atom: only try strictly simpler atoms (ints and booleans
        # rank above 1/#t, which rank above 0/#f — no cycles).
        if isinstance(node, Symbol):
            if node.name not in _HEADS:
                out.extend(_ATOMS[:2])
        elif node not in (0, False):
            out.extend(a for a in (0, 1) if a != node)
    return out
