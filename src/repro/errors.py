"""Compiler-side errors (distinct from run-time SchemeError)."""

from __future__ import annotations


class CompilerError(Exception):
    """Raised for malformed programs: bad syntax, unbound variables,
    wrong primitive arity, and similar static errors."""


class FuzzError(Exception):
    """Raised by the fuzzing subsystem for operational failures that are
    not divergences: malformed corpus files, bad replay targets, and
    similar.  The CLI reports these as one-line diagnostics."""


class ServeError(Exception):
    """Raised by the batch/serve subsystem for operational failures:
    malformed request files, unknown benchmark names, and similar.  The
    CLI reports these as one-line diagnostics."""
