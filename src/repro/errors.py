"""Compiler-side errors (distinct from run-time SchemeError)."""

from __future__ import annotations


class CompilerError(Exception):
    """Raised for malformed programs: bad syntax, unbound variables,
    wrong primitive arity, and similar static errors."""
