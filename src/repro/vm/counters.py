"""Run-time event counters.

``stack_reads``/``stack_writes`` are broken down by the reason for the
access (see ``repro.backend.isa.STACK_KINDS``); their grand total is
the paper's "stack references" metric (Table 3).  ``cycles`` is the
cost-model time used for the paper's "performance increase" columns.
"""

from __future__ import annotations

from typing import Dict


class Counters:
    __slots__ = (
        "instructions",
        "cycles",
        "stack_reads",
        "stack_writes",
        "calls",
        "tail_calls",
        "prim_calls",
        "closure_allocs",
        "branches",
        "mispredicts",
        "moves",
        "swaps",
        "continuations_captured",
        "continuations_invoked",
    )

    def __init__(self) -> None:
        self.instructions = 0
        self.cycles = 0
        self.stack_reads: Dict[str, int] = {}
        self.stack_writes: Dict[str, int] = {}
        self.calls = 0
        self.tail_calls = 0
        self.prim_calls = 0
        self.closure_allocs = 0
        self.branches = 0
        self.mispredicts = 0
        self.moves = 0
        self.swaps = 0
        self.continuations_captured = 0
        self.continuations_invoked = 0

    def count_read(self, kind: str) -> None:
        self.stack_reads[kind] = self.stack_reads.get(kind, 0) + 1

    def count_write(self, kind: str) -> None:
        self.stack_writes[kind] = self.stack_writes.get(kind, 0) + 1

    @property
    def total_stack_refs(self) -> int:
        return sum(self.stack_reads.values()) + sum(self.stack_writes.values())

    @property
    def saves(self) -> int:
        return self.stack_writes.get("save", 0)

    @property
    def restores(self) -> int:
        return self.stack_reads.get("restore", 0)

    def as_dict(self) -> Dict[str, object]:
        """Every counter under stable keys (per-kind breakdowns sorted),
        for the metrics exporter and ``repro run --json``."""
        return {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "stack_refs": self.total_stack_refs,
            "stack_reads": {
                k: self.stack_reads[k] for k in sorted(self.stack_reads)
            },
            "stack_writes": {
                k: self.stack_writes[k] for k in sorted(self.stack_writes)
            },
            "saves": self.saves,
            "restores": self.restores,
            "calls": self.calls,
            "tail_calls": self.tail_calls,
            "prim_calls": self.prim_calls,
            "closure_allocs": self.closure_allocs,
            "branches": self.branches,
            "mispredicts": self.mispredicts,
            "moves": self.moves,
            "swaps": self.swaps,
            "continuations_captured": self.continuations_captured,
            "continuations_invoked": self.continuations_invoked,
        }

    def summary(self) -> Dict[str, object]:
        return {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "stack_refs": self.total_stack_refs,
            "stack_reads": dict(self.stack_reads),
            "stack_writes": dict(self.stack_writes),
            "calls": self.calls,
            "tail_calls": self.tail_calls,
            "saves": self.saves,
            "restores": self.restores,
            "branches": self.branches,
            "mispredicts": self.mispredicts,
        }

    def __repr__(self) -> str:
        return (
            f"<Counters instrs={self.instructions} cycles={self.cycles} "
            f"stack_refs={self.total_stack_refs} calls={self.calls}>"
        )
