"""The virtual machine: an instruction-level simulator with stack-
reference accounting, a load-latency cycle model, and the dynamic
call-graph classifier behind Table 2."""

from repro.vm.counters import Counters
from repro.vm.callgraph import ActivationClassifier, CATEGORIES
from repro.vm.machine import Machine, VMClosure, VMContinuation

__all__ = [
    "Counters",
    "ActivationClassifier",
    "CATEGORIES",
    "Machine",
    "VMClosure",
    "VMContinuation",
]
