"""The virtual machine: an instruction-level simulator with stack-
reference accounting, a load-latency cycle model, and the dynamic
call-graph classifier behind Table 2.

Exports resolve lazily (PEP 562): ``Machine`` lives in
``repro.vm.machine``, which imports the trace compiler — but the
runtime slice (``repro.vm.aotrt``, ``counters``, ``callgraph``) must
be importable without dragging the compiler in, because AOT-emitted
modules execute with no compiler in-process (see ``docs/aot.md``).
"""

_EXPORTS = {
    "Counters": "repro.vm.counters",
    "ActivationClassifier": "repro.vm.callgraph",
    "CATEGORIES": "repro.vm.callgraph",
    "Machine": "repro.vm.machine",
    "VMClosure": "repro.vm.machine",
    "VMContinuation": "repro.vm.machine",
}

__all__ = list(_EXPORTS)


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.vm' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(__all__)
