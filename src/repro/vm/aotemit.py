"""The AOT emitter: a compiled program as one generated Python module.

``repro aot build`` takes a program through the normal pipeline, then
calls :func:`emit_module` to write the *whole program* out as a single
importable Python source file:

* every code object becomes a top-level :class:`~repro.vm.aotrt.AotCode`
  (``K0``, ``K1``, ...) carrying the runtime slice of the
  ``CodeObject`` — name, arity, frame size, the classifier's static
  flags;
* every trace becomes a top-level function (``_t<code>_<pc>``), spliced
  verbatim from :func:`repro.vm.blockcompile.build_trace_module` with
  one shared const pool across all code objects;
* const-pool bindings are spelled re-creatably: primitives by catalog
  name, code objects as ``K`` references, datum immediates as their
  written form re-read by :func:`repro.vm.aotrt.datum`;
* each code's block table is a dict literal of
  ``leader_pc: (trace_fn, exits)`` — the same shape the in-process
  trampoline consumes, minus the ``None`` padding;
* call and tail-call exits whose callee
  :func:`repro.vm.callgraph.proves_direct_call` is statically known
  (and arity-correct) are rewritten to the direct kinds
  (``K_CALL_DIRECT``/``K_TAIL_DIRECT``), collapsing the trampoline's
  closure type test and arity check into the emitted table
  (``CompilerConfig.aot_direct_calls`` gates this);
* a ``PROGRAM`` :class:`~repro.vm.aotrt.AotProgram` bakes the register
  geometry, the cost-model scalars, and provenance stamps (source
  cache key, config fingerprint, package version).

The emitted module imports only the runtime slice of the package
(:mod:`repro.vm.aotrt` and the primitives/datum modules) — importing
or running it never loads the compiler; ``tests/vm/test_aot.py``
asserts that in a subprocess, and the equivalence suite asserts that
values, output, counters, and activation counts are bit-identical to
both interpreted loops.  See ``docs/aot.md`` for a walkthrough of an
emitted module.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro import __version__
from repro.astnodes import CodeObject
from repro.backend.codegen import CompiledProgram
from repro.sexp.datum import NIL, UNSPECIFIED
from repro.sexp.reader import read
from repro.sexp.writer import write_datum
from repro.vm.aotrt import K_CALL, K_CALL_DIRECT, K_TAIL, K_TAIL_DIRECT
from repro.vm.blockcompile import build_trace_module
from repro.vm.callgraph import closure_slot_callees, proves_direct_call
from repro.vm.predecode import KIND_NAMES

from repro.runtime.primitives import PRIMITIVES


class EmitInfo:
    """What :func:`emit_module` produced, for reporting: how many code
    objects and traces were emitted, and how many of the program's
    call sites collapsed into direct transfers."""

    __slots__ = ("codes", "traces", "call_sites", "direct_calls")

    def __init__(self, codes: int, traces: int, call_sites: int,
                 direct_calls: int) -> None:
        self.codes = codes
        self.traces = traces
        self.call_sites = call_sites
        self.direct_calls = direct_calls

    def as_dict(self) -> dict:
        return {
            "codes": self.codes,
            "traces": self.traces,
            "call_sites": self.call_sites,
            "direct_calls": self.direct_calls,
        }


def _prim_names() -> Dict[Any, str]:
    return {spec.fn: name for name, spec in PRIMITIVES.items()}


def _spell_const(value: Any, code_names: Dict[int, str],
                 by_fn: Dict[Any, str]) -> str:
    """One const-pool binding's right-hand side, re-creatable at import
    time with no compiler present."""
    if isinstance(value, CodeObject):
        return code_names[id(value)]
    prim = by_fn.get(value) if callable(value) else None
    if prim is not None:
        return f"PRIMITIVES[{prim!r}].fn"
    # Singletons the trace namespace already binds (their written
    # forms — `#<void>`, `()` — are not or not-identically readable).
    if value is UNSPECIFIED:
        return "UNSPECIFIED"
    if value is NIL:
        return "NIL"
    # Everything else the trace generator refuses to spell inline is a
    # datum (symbols, quoted pairs, vectors, ...): the s-expression
    # writer/reader round-trip is exact — verified here at build time,
    # so a gap surfaces as an emit error, never a wrong program.
    text = write_datum(value)
    if read(text) != value and write_datum(read(text)) != text:
        raise ValueError(f"const does not round-trip as a datum: {text!r}")
    return f"_datum({text!r})"


def _spell_exit(exit_tuple, kname: Optional[str]) -> str:
    """One exit tuple as source text; *kname* is the direct-call target
    ``K`` name when this exit was collapsed (the only non-literal an
    exit can carry)."""
    kind, arg, nexec, counts, taken = exit_tuple
    if kname is not None:
        if kind == K_CALL:
            return f"({K_CALL_DIRECT}, ({kname}, {arg[1]!r}), {nexec!r}, {counts!r}, {taken!r})"
        return f"({K_TAIL_DIRECT}, {kname}, {nexec!r}, {counts!r}, {taken!r})"
    return f"({kind!r}, {arg!r}, {nexec!r}, {counts!r}, {taken!r})"


def emit_module(compiled: CompiledProgram, source_key: str = "") -> str:
    """Generate the emitted module's source for *compiled*; the second
    half of ``repro aot build`` (the first is the ordinary pipeline).
    Pure — touches no caches on the program and writes nothing."""
    info = EmitInfo(0, 0, 0, 0)
    return emit_module_info(compiled, source_key, info)


def emit_module_info(
    compiled: CompiledProgram, source_key: str, info: EmitInfo
) -> str:
    """:func:`emit_module`, filling *info* with emission statistics."""
    config = compiled.config
    cost_model = config.cost_model
    regfile = compiled.regfile
    cp_index = regfile.cp.index
    collapse = config.aot_direct_calls
    by_fn = _prim_names()

    # Stable K names, entry first (the entry is compiled.codes[0] by
    # construction, but do not rely on it).
    codes: List[CodeObject] = list(compiled.codes)
    if compiled.entry not in codes:  # pragma: no cover - defensive
        codes.insert(0, compiled.entry)
    code_names = {id(code): f"K{i}" for i, code in enumerate(codes)}

    # One shared const pool: quoted data referenced from several code
    # objects keeps its identity, exactly like the in-process path.
    from repro.vm.blockcompile import _ConstPool

    consts = _ConstPool()
    slot_map = closure_slot_callees(codes) if collapse else {}
    modules = []
    for i, code in enumerate(codes):
        tm = build_trace_module(
            code, cost_model, cp_index,
            name_prefix=f"_t{i}_", consts=consts,
            track_callees=collapse,
            slot_env=slot_map.get(code),
        )
        modules.append(tm)

    lines: List[str] = []
    w = lines.append
    w('"""AOT-compiled repro program.  Generated — do not edit.')
    w("")
    w(f"source key:  {source_key or '(not recorded)'}")
    w(f"fingerprint: {config.fingerprint()}")
    w(f"emitter:     repro {__version__} (repro.vm.aotemit)")
    w("")
    w("Importable with only the runtime slice of the repro package in")
    w("the process; run with `python <this file> [--json]` or import it")
    w("and call `run()`.")
    w('"""')
    w("")
    w("from repro.runtime.primitives import PRIMITIVES")
    w("from repro.sexp.datum import NIL, Pair, UNSPECIFIED  # noqa: F401")
    w("from repro.vm.aotrt import (")
    w("    AotCode,")
    w("    AotProgram,")
    w("    VMClosure,  # noqa: F401 - referenced by trace functions")
    w("    datum as _datum,")
    w("    main as _main,")
    w("    run_program as _run_program,")
    w(")")
    w("")

    # -- code objects ---------------------------------------------------
    for i, code in enumerate(codes):
        w(
            f"K{i} = AotCode({code.name!r}, {code.label!r}, "
            f"{len(code.params)}, {code.frame_size}, "
            f"{code.syntactic_leaf!r}, {code.always_calls!r})"
        )
    w("")

    # -- the shared const pool ------------------------------------------
    for name, value in consts.values.items():
        w(f"{name} = {_spell_const(value, code_names, by_fn)}")
    if consts.values:
        w("")

    # -- trace functions ------------------------------------------------
    for tm in modules:
        w(tm.source)
        w("")

    # -- block tables ---------------------------------------------------
    call_sites = 0
    direct_calls = 0
    for i, (code, tm) in enumerate(zip(codes, modules)):
        w(f"K{i}.blocks = {{")
        for start, fn_name, exits in sorted(tm.records):
            spelled = []
            for j, ex in enumerate(exits):
                kname = None
                if ex[0] in (K_CALL, K_TAIL):
                    call_sites += 1
                    if collapse:
                        callee = tm.callees.get((start, j))
                        argc = ex[1][0] if ex[0] == K_CALL else ex[1]
                        if proves_direct_call(callee, argc):
                            kname = code_names[id(callee)]
                            direct_calls += 1
                spelled.append(_spell_exit(ex, kname))
            w(f"    {start}: ({fn_name}, ({', '.join(spelled)}{',' if len(spelled) == 1 else ''})),")
        w("}")
        w("")

    # -- the program ----------------------------------------------------
    num_arg_regs = regfile.num_arg_regs
    a0 = regfile.arg_regs[0].index if num_arg_regs else None
    w("PROGRAM = AotProgram(")
    w(f"    entry={code_names[id(compiled.entry)]},")
    w(f"    codes=({', '.join(f'K{i}' for i in range(len(codes)))}),")
    w(f"    nregs={len(regfile)},")
    w(f"    a0={a0!r},")
    w(f"    ret={regfile.ret.index},")
    w(f"    cp={cp_index},")
    w(f"    rv={regfile.rv.index},")
    w(f"    call_overhead={cost_model.call_overhead},")
    w(f"    predict={config.branch_prediction is not None!r},")
    w(f"    penalty={cost_model.branch_mispredict_penalty},")
    w(f"    kind_names={KIND_NAMES!r},")
    w(f"    direct_calls={direct_calls},")
    w(f"    call_sites={call_sites},")
    w(f"    source_key={source_key!r},")
    w(f"    fingerprint={config.fingerprint()!r},")
    w(f"    version={__version__!r},")
    w(")")
    w("")
    w("")
    w("def run(max_instructions=None):")
    w('    """Execute the program; returns a repro.vm.aotrt.AotResult."""')
    w("    return _run_program(PROGRAM, max_instructions=max_instructions)")
    w("")
    w("")
    w('if __name__ == "__main__":')
    w("    import sys")
    w("")
    w("    sys.exit(_main(PROGRAM))")
    w("")

    info.codes = len(codes)
    info.traces = sum(len(tm.records) for tm in modules)
    info.call_sites = call_sites
    info.direct_calls = direct_calls
    return "\n".join(lines)
