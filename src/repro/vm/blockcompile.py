"""Block compilation: the fast path's execution engine.

``repro.vm.predecode`` turns each code object's symbolic instructions
into a fused, coded tuple stream.  Dispatching over that stream one
tuple at a time still pays an interpretive tax per instruction: fetch,
tag compare, operand subscripts, counter bumps.  This module removes
that tax by compiling the stream into *traces* — extended basic
blocks, each one generated straight-line Python function.  A trace is
the logical endpoint of superinstruction fusion: the whole block is
the superinstruction.

A trace starts at a block leader (the entry, a branch target, or a
return address) and follows the fall-through path as far as it can:

* straight-line instructions are emitted inline with operands baked in
  as source-text literals, so there is no operand fetch at run time;
* forward jumps are followed (the jump charges its cycle, then the
  target's code continues inline);
* conditional branches stay in the trace: the not-taken (fall-through,
  statically predicted) side continues inline, while the taken side
  becomes an early ``return`` naming an *exit*;
* the trace ends at a control transfer the trampoline must perform —
  call, tail call, ``call/cc``, return, halt — or at a backward jump.

Every generated function has the shape
``fn(regs, ready, stack, sp, cycle, port) -> (cycle, exit_id)``.  The
per-instruction ``cycle += 1`` dispatch charges are constant-folded:
the generator tracks a static cycle offset and only materializes it at
stall checks and at exits, so a run of loads compiles to plain list
moves plus one add.  Primitive callables, code objects, and
non-trivial immediates are bound once into the function's globals
(``C0``, ``C1``, ...).

Counter effects are static *per exit*: how many instructions, moves,
prim calls, and stack accesses of each kind were executed by the time
a trace leaves through a given exit is known at compile time, so the
trampoline applies one small tuple of deltas per trace execution
instead of one bump per instruction.  Only branch mispredicts and
continuation invokes are dynamic, and both are accounted by the
trampoline (a taken-branch exit carries a flag).

The trampoline (``Machine._run_fast``) executes a program as::

    fn, exits = blocks[pc]                      # one indexed fetch
    cycle, ex = fn(regs, ready, stack, sp, cycle, port)
    kind, arg, nexec, counts, taken = exits[ex]
    ... budget, counter deltas, mispredict, control transfer ...

Trace functions never transfer control themselves; the trampoline
performs calls, returns, branch-target selection, and the
stack-release policy — byte-for-byte the legacy loop's semantics, so
values, output, counters, cycles, and per-procedure profiles are
bit-identical to ``Machine._run`` (asserted by
``tests/vm/test_predecode_equiv.py`` and the fuzz oracle's ``vm-fast``
invariant).

Trace boundaries and ``pc`` values live in the *fused* coded stream's
index space — the same space return addresses and captured
continuations use — so a code object's block table and its
``fast_instructions`` are two views of one program.  Inlining across
leaders duplicates code (a join block's instructions appear in every
trace that reaches it); :data:`TRACE_LIMIT` bounds the duplication by
ending over-long traces at the next natural boundary.

The one observable relaxation: the instruction budget
(``max_instructions``) is checked once per trace, after the trace has
run, so a budget-exceeded run may raise up to a trace's length later
than the legacy loop's per-instruction check (and may have performed
those instructions' effects).  Successful runs are unaffected — their
totals never cross the budget — and nothing compares counters or
output on budget-error paths.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.primitives import PRIMITIVES
from repro.sexp.datum import NIL, Pair, UNSPECIFIED
from repro.vm.predecode import (
    OP_BRF,
    OP_BRT,
    OP_CALL,
    OP_CALLCC,
    OP_CLO_ALLOC,
    OP_CLO_REF,
    OP_CLO_SET,
    OP_CLOSURE,
    OP_HALT,
    OP_JMP,
    OP_LD,
    OP_LD_OUT,
    OP_LDBRF,
    OP_LDBRT,
    OP_LDM,
    OP_LI,
    OP_MOV,
    OP_MOVM,
    OP_PRIM0,
    OP_PRIM1,
    OP_PRIM2,
    OP_PRIM3,
    OP_PRIMN,
    OP_PERMI,
    OP_PRIMX,
    OP_RETURN,
    OP_ST,
    OP_ST_OUT,
    OP_STM,
    OP_SWAP,
    OP_TAILCALL,
    predecode_code,
)

# ---------------------------------------------------------------------------
# Exit classes: how the trampoline continues after a trace returns.

K_FALL = 0    # continue at `arg` (fallthrough, jump, or taken branch)
K_CALL = 1    # non-tail call: `arg` is (argc, return_pc)
K_TAIL = 2    # tail call: `arg` is argc
K_CALLCC = 3  # continuation capture: `arg` is return_pc
K_RET = 4     # procedure return
K_HALT = 5    # program end

# Accumulator slots shared between exit `counts` tuples and the
# trampoline's 20-element `acc` list.  0-8 are scalar counters, 9-13
# stack reads by kind, 14-18 stack writes by kind (kind order is
# repro.vm.predecode.KIND_NAMES), 19 permutation instructions.
ACC_PRIM = 0
ACC_MOV = 1
ACC_BRANCH = 2
ACC_MISS = 3
ACC_CALL = 4
ACC_TAIL = 5
ACC_CLO = 6
ACC_CC_CAP = 7
ACC_CC_INV = 8
ACC_READS = 9
ACC_WRITES = 14
ACC_SWAP = 19
ACC_SIZE = 20

#: Soft cap on instructions inlined per trace.  Once exceeded, the
#: trace ends at the next natural boundary (leader, branch, or jump)
#: instead of continuing inline, bounding total code duplication.
TRACE_LIMIT = 128

_SAFE_IMMEDIATES = (int, float, str)

#: Marker for "register operand, value unknown at compile time" in the
#: prim-inlining operand lists (immediates carry their actual value).
_REG = object()


def _build_inline_tags() -> Dict[Any, Tuple[str, ...]]:
    """Primitives the generator open-codes behind a type guard.

    Keyed by the primitive's resolved callable (what the coded stream
    carries).  Each fast path is *exactly* the primitive's behaviour on
    guarded inputs; anything that fails the guard falls back to the
    real callable, so error messages and edge semantics are untouched.
    """
    table = {}
    for name, tag in (
        ("+", ("arith", "+")),
        ("-", ("arith", "-")),
        ("*", ("arith", "*")),
        ("<", ("arith", "<")),
        ("<=", ("arith", "<=")),
        (">", ("arith", ">")),
        (">=", ("arith", ">=")),
        ("=", ("arith", "==")),
        ("add1", ("incdec", "+")),
        ("sub1", ("incdec", "-")),
        ("zero?", ("zero",)),
        ("car", ("field", "car")),
        ("cdr", ("field", "cdr")),
        ("set-car!", ("setfield", "car")),
        ("set-cdr!", ("setfield", "cdr")),
        ("cons", ("cons",)),
        ("null?", ("isnil",)),
        ("not", ("isfalse",)),
        ("pair?", ("ispair",)),
        ("eq?", ("eqis",)),
        ("vector-ref", ("vref",)),
        ("vector-set!", ("vset",)),
    ):
        spec = PRIMITIVES.get(name)
        if spec is not None:
            table[spec.fn] = tag
    return table


_INLINE_TAGS = _build_inline_tags()


def _find_leaders(instrs: Tuple[Tuple[Any, ...], ...]) -> List[int]:
    """Initial trace leaders: entry, every branch/jump target, every
    return address (the pc after a call or callcc).  Trace building
    may add more (see TRACE_LIMIT)."""
    n = len(instrs)
    leaders = {0}
    for pc, ins in enumerate(instrs):
        op = ins[0]
        if op == OP_BRF or op == OP_BRT:
            leaders.add(ins[2])
            leaders.add(pc + 1)
        elif op == OP_LDBRF or op == OP_LDBRT:
            leaders.add(ins[4])
            leaders.add(pc + 1)
        elif op == OP_JMP:
            leaders.add(ins[1])
        elif op == OP_CALL or op == OP_CALLCC:
            leaders.add(pc + 1)
    leaders.discard(n)
    return sorted(leaders)


def _expand(ins: Tuple[Any, ...]) -> List[Tuple[Any, ...]]:
    """A fused op is its exact component sequence; everything else is
    itself."""
    op = ins[0]
    if op == OP_MOVM:
        return [(OP_MOV, d, s) for d, s in ins[1]]
    if op == OP_STM:
        return [(OP_ST, slot, src, k) for slot, src, k in ins[1]]
    if op == OP_LDM:
        return [(OP_LD, d, slot, k) for d, slot, k in ins[1]]
    return [ins]


class _ConstPool:
    """Objects the generated source cannot spell as literals, bound
    into the exec globals as C0, C1, ..."""

    def __init__(self) -> None:
        self.by_id: Dict[int, str] = {}
        self.values: Dict[str, Any] = {}

    def ref(self, value: Any) -> str:
        name = self.by_id.get(id(value))
        if name is None:
            name = f"C{len(self.by_id)}"
            self.by_id[id(value)] = name
            self.values[name] = value
        return name


class _TraceWriter:
    """Generates one trace function's source, tracking the static
    cycle offset (`dc`) and the running counter deltas."""

    def __init__(self, name: str, consts: _ConstPool, cp: int,
                 load_latency: int, store_extra: int) -> None:
        self.lines: List[str] = [
            f"def {name}(regs, ready, stack, sp, cycle, port):"
        ]
        self.consts = consts
        self.cp = cp
        self.load_latency = load_latency
        self.store_extra = store_extra
        self.dc = 0
        self.counts: Dict[int, int] = {}

    # -- helpers -----------------------------------------------------------

    def w(self, line: str) -> None:
        self.lines.append("    " + line)

    def count(self, slot: int, n: int = 1) -> None:
        self.counts[slot] = self.counts.get(slot, 0) + n

    def snapshot(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(sorted(self.counts.items()))

    def cyc(self) -> str:
        return f"cycle + {self.dc}" if self.dc else "cycle"

    def sp_index(self, offset: int) -> str:
        return f"sp + {offset}" if offset else "sp"

    def stall(self, src: int) -> None:
        """cycle = max(cycle, ready[src]) against the virtual (offset)
        cycle; keeps `dc` constant by shifting the stalled value."""
        self.w(f"t = ready[{src}]")
        if self.dc:
            self.w(f"if t > cycle + {self.dc}: cycle = t - {self.dc}")
        else:
            self.w("if t > cycle: cycle = t")

    def imm(self, value: Any) -> str:
        if value is None or value is True or value is False:
            return repr(value)
        if type(value) in _SAFE_IMMEDIATES:
            return repr(value)
        return self.consts.ref(value)

    def ensure(self, idx_expr: str) -> None:
        self.w(f"idx = {idx_expr}")
        self.w("if idx >= len(stack):")
        self.w("    stack.extend([None] * (idx - len(stack) + 256))")

    # -- primitive application ----------------------------------------------

    def _prim(self, dst: int, fn: Any, operands: List[Tuple[str, Any]]) -> None:
        """Apply a primitive; *operands* is ``(expr, value)`` pairs where
        value is :data:`_REG` for register operands (unknown at compile
        time) or the immediate itself.  Hot primitives are open-coded
        behind exact type guards; everything else — and every guard
        miss — goes through the primitive's real callable, so errors
        and edge cases behave identically."""
        tag = _INLINE_TAGS.get(fn)
        if tag is None or not self._prim_inline(tag, dst, fn, operands):
            ref = self.consts.ref(fn)
            args = ", ".join(e for e, _ in operands)
            self.w(f"regs[{dst}] = {ref}([{args}], port)")
        self.w(f"ready[{dst}] = {self.cyc()}")
        self.count(ACC_PRIM)

    def _prim_inline(
        self, tag: Tuple[str, ...], dst: int, fn: Any,
        operands: List[Tuple[str, Any]],
    ) -> bool:
        """Emit the open-coded form for *tag* if the operand shapes
        allow it; returns False to fall back to the generic call."""
        kind = tag[0]
        if len(operands) > 4:
            return False
        # Bind register operands to locals: each is used by the guard,
        # the fast path, and the fallback call.
        names: List[str] = []
        for i, (expr, value) in enumerate(operands):
            if value is _REG:
                name = "xyzw"[i]
                self.w(f"{name} = {expr}")
                names.append(name)
            else:
                names.append(expr)

        def int_guard(indices) -> Optional[str]:
            parts = []
            for i in indices:
                if operands[i][1] is _REG:
                    parts.append(f"type({names[i]}) is int")
                elif type(operands[i][1]) is not int:
                    return None
            return " and ".join(parts)

        def fallback() -> str:
            ref = self.consts.ref(fn)
            return f"regs[{dst}] = {ref}([{', '.join(names)}], port)"

        if kind == "arith" and len(operands) == 2:
            guard = int_guard((0, 1))
            if guard is None:
                return False
            body = f"regs[{dst}] = {names[0]} {tag[1]} {names[1]}"
            if guard:
                self.w(f"if {guard}:")
                self.w(f"    {body}")
                self.w("else:")
                self.w(f"    {fallback()}")
            else:
                self.w(body)
            return True
        if kind == "incdec" and len(operands) == 1:
            guard = int_guard((0,))
            if not guard:
                return False
            self.w(f"if {guard}:")
            self.w(f"    regs[{dst}] = {names[0]} {tag[1]} 1")
            self.w("else:")
            self.w(f"    {fallback()}")
            return True
        if kind == "zero" and len(operands) == 1:
            guard = int_guard((0,))
            if not guard:
                return False
            self.w(f"if {guard}:")
            self.w(f"    regs[{dst}] = {names[0]} == 0")
            self.w("else:")
            self.w(f"    {fallback()}")
            return True
        if kind == "field" and len(operands) == 1 and operands[0][1] is _REG:
            self.w(f"if type({names[0]}) is Pair:")
            self.w(f"    regs[{dst}] = {names[0]}.{tag[1]}")
            self.w("else:")
            self.w(f"    {fallback()}")
            return True
        if kind == "setfield" and len(operands) == 2 and operands[0][1] is _REG:
            self.w(f"if type({names[0]}) is Pair:")
            self.w(f"    {names[0]}.{tag[1]} = {names[1]}")
            self.w(f"    regs[{dst}] = UNSPECIFIED")
            self.w("else:")
            self.w(f"    {fallback()}")
            return True
        if kind == "cons" and len(operands) == 2:
            self.w(f"regs[{dst}] = Pair({names[0]}, {names[1]})")
            return True
        if kind == "isnil" and len(operands) == 1:
            self.w(f"regs[{dst}] = {names[0]} is NIL")
            return True
        if kind == "isfalse" and len(operands) == 1:
            self.w(f"regs[{dst}] = {names[0]} is False")
            return True
        if kind == "ispair" and len(operands) == 1:
            self.w(f"regs[{dst}] = isinstance({names[0]}, Pair)")
            return True
        if kind == "eqis" and len(operands) == 2:
            ref = self.consts.ref(fn)
            self.w(
                f"regs[{dst}] = True if {names[0]} is {names[1]} "
                f"else {ref}([{names[0]}, {names[1]}], port)"
            )
            return True
        if kind == "vref" and len(operands) == 2 and operands[0][1] is _REG:
            iguard = int_guard((1,))
            if iguard is None:
                return False
            guard = f"type({names[0]}) is list"
            if iguard:
                guard += f" and {iguard}"
            self.w(f"if {guard} and 0 <= {names[1]} < len({names[0]}):")
            self.w(f"    regs[{dst}] = {names[0]}[{names[1]}]")
            self.w("else:")
            self.w(f"    {fallback()}")
            return True
        if kind == "vset" and len(operands) == 3 and operands[0][1] is _REG:
            iguard = int_guard((1,))
            if iguard is None:
                return False
            guard = f"type({names[0]}) is list"
            if iguard:
                guard += f" and {iguard}"
            self.w(f"if {guard} and 0 <= {names[1]} < len({names[0]}):")
            self.w(f"    {names[0]}[{names[1]}] = {names[2]}")
            self.w(f"    regs[{dst}] = UNSPECIFIED")
            self.w("else:")
            self.w(f"    {fallback()}")
            return True
        return False

    # -- straight-line instruction bodies ----------------------------------

    def emit(self, ins: Tuple[Any, ...]) -> None:
        op = ins[0]
        self.dc += 1
        L = self.load_latency
        if op == OP_LD:
            self.w(f"regs[{ins[1]}] = stack[{self.sp_index(ins[2])}]")
            self.w(f"ready[{ins[1]}] = cycle + {self.dc + L}")
            self.count(ACC_READS + ins[3])
        elif op == OP_ST:
            self.stall(ins[2])
            self.w(f"stack[{self.sp_index(ins[1])}] = regs[{ins[2]}]")
            self.dc += self.store_extra
            self.count(ACC_WRITES + ins[3])
        elif op == OP_MOV:
            self.stall(ins[2])
            self.w(f"regs[{ins[1]}] = regs[{ins[2]}]")
            self.w(f"ready[{ins[1]}] = {self.cyc()}")
            self.count(ACC_MOV)
        elif op == OP_SWAP:
            self.stall(ins[1])
            self.stall(ins[2])
            self.w(f"regs[{ins[1]}], regs[{ins[2]}] = "
                   f"regs[{ins[2]}], regs[{ins[1]}]")
            self.w(f"ready[{ins[1]}] = {self.cyc()}")
            self.w(f"ready[{ins[2]}] = {self.cyc()}")
            self.count(ACC_SWAP)
        elif op == OP_PERMI:
            rs = ins[1]
            for r in rs:
                self.stall(r)
            lhs = ", ".join(f"regs[{r}]" for r in rs)
            rhs = ", ".join(
                f"regs[{rs[(i + 1) % len(rs)]}]" for i in range(len(rs))
            )
            self.w(f"{lhs} = {rhs}")
            for r in rs:
                self.w(f"ready[{r}] = {self.cyc()}")
            self.count(ACC_SWAP)
        elif op == OP_LI:
            self.w(f"regs[{ins[1]}] = {self.imm(ins[2])}")
            self.w(f"ready[{ins[1]}] = {self.cyc()}")
        elif op == OP_PRIM1:
            self.stall(ins[3])
            self._prim(ins[1], ins[2], [(f"regs[{ins[3]}]", _REG)])
        elif op == OP_PRIM2:
            self.stall(ins[3])
            self.stall(ins[4])
            self._prim(
                ins[1], ins[2],
                [(f"regs[{ins[3]}]", _REG), (f"regs[{ins[4]}]", _REG)],
            )
        elif op == OP_PRIM3:
            self.stall(ins[3])
            self.stall(ins[4])
            self.stall(ins[5])
            self._prim(
                ins[1], ins[2],
                [(f"regs[{s}]", _REG) for s in ins[3:6]],
            )
        elif op == OP_PRIMN:
            for s in ins[3]:
                self.stall(s)
            self._prim(ins[1], ins[2], [(f"regs[{s}]", _REG) for s in ins[3]])
        elif op == OP_PRIM0:
            self._prim(ins[1], ins[2], [(self.imm(v), v) for v in ins[3]])
        elif op == OP_PRIMX:
            operands = []
            for s in ins[3]:
                if type(s) is int:
                    self.stall(s)
                    operands.append((f"regs[{s}]", _REG))
                else:
                    operands.append((self.imm(s[1]), s[1]))
            self._prim(ins[1], ins[2], operands)
        elif op == OP_CLO_REF:
            self.w(f"regs[{ins[1]}] = regs[{self.cp}].slots[{ins[2]}]")
            self.w(f"ready[{ins[1]}] = {self.cyc()}")
        elif op == OP_CLOSURE:
            for s in ins[3]:
                self.stall(s)
            codeobj = self.consts.ref(ins[2])
            vals = ", ".join(f"regs[{s}]" for s in ins[3])
            self.w(f"regs[{ins[1]}] = VMClosure({codeobj}, [{vals}])")
            self.w(f"ready[{ins[1]}] = {self.cyc()}")
            self.count(ACC_CLO)
        elif op == OP_CLO_ALLOC:
            codeobj = self.consts.ref(ins[2])
            self.w(f"regs[{ins[1]}] = VMClosure({codeobj}, [None] * {ins[3]})")
            self.w(f"ready[{ins[1]}] = {self.cyc()}")
            self.count(ACC_CLO)
        elif op == OP_CLO_SET:
            self.stall(ins[3])
            self.w(f"regs[{ins[1]}].slots[{ins[2]}] = regs[{ins[3]}]")
        elif op == OP_LD_OUT:
            self.ensure(self.sp_index(ins[2]))
            self.w(f"regs[{ins[1]}] = stack[idx]")
            self.w(f"ready[{ins[1]}] = cycle + {self.dc + L}")
            self.count(ACC_READS + ins[3])
        elif op == OP_ST_OUT:
            self.stall(ins[2])
            self.ensure(self.sp_index(ins[1]))
            self.w(f"stack[idx] = regs[{ins[2]}]")
            self.dc += self.store_extra
            self.count(ACC_WRITES + ins[3])
        else:  # pragma: no cover - closed opcode set
            raise ValueError(f"cannot block-compile opcode {op}")

    # -- exits -------------------------------------------------------------

    def branch_head(self, src: int) -> None:
        """The branch's dispatch charge and source stall, shared by the
        taken exit and the inline fall-through continuation."""
        self.dc += 1
        self.stall(src)
        self.count(ACC_BRANCH)

    def branch_exit(self, src: int, negate: bool, exit_id: int) -> None:
        """Taken side leaves the trace; not-taken continues inline."""
        test = "is not False" if negate else "is False"
        self.w(f"if regs[{src}] {test}: return {self.cyc()}, {exit_id}")

    def branch_exit_both(
        self, src: int, negate: bool, taken_id: int, fall_id: int
    ) -> None:
        """Over-limit trace: both branch sides leave the trace."""
        test = "is not False" if negate else "is False"
        self.w(
            f"return {self.cyc()}, "
            f"({taken_id} if regs[{src}] {test} else {fall_id})"
        )

    def return_exit(self, exit_id: int) -> None:
        self.w(f"return {self.cyc()}, {exit_id}")

    def source(self) -> str:
        return "\n".join(self.lines)


#: Register-writing opcodes whose destination is operand 1 — the set
#: the static-callee tracker must watch for CP clobbers.
_DST_OPS = frozenset((
    OP_LD, OP_MOV, OP_LI, OP_PRIM0, OP_PRIM1, OP_PRIM2, OP_PRIM3,
    OP_PRIMN, OP_PRIMX, OP_CLO_REF, OP_CLOSURE, OP_CLO_ALLOC, OP_LD_OUT,
))


def _build_trace(
    start, instrs, n, leader_set, pending, wtr, callees=None, slot_env=None
):
    """Emit one trace into *wtr*; returns its exit table.

    Exits are ``(kind, arg, nexec, counts, taken)``: the trampoline
    action, its argument, the exact number of instructions executed
    when leaving through this exit, the counter deltas accumulated by
    then, and whether the exit is a taken conditional branch (for
    mispredict accounting).

    When *callees* (a dict) is given, the builder additionally tracks
    which registers provably hold a closure of a statically-known
    ``CodeObject`` along the trace's fall-through path:
    ``closure``/``clo_alloc`` establish one, ``mov`` propagates,
    ``clo_ref`` consults *slot_env* (this code's proven closure-slot
    contents from :func:`repro.vm.callgraph.closure_slot_callees`),
    and every other register write clobbers.  Each call/tail-call exit
    records the proven callee of the closure-pointer register (or
    None) under ``(start, exit_index)`` — the AOT emitter collapses
    those sites into direct calls (see :mod:`repro.vm.aotemit`); the
    in-process trampoline ignores them.
    """
    exits: List[Tuple[int, Any, int, Tuple[Tuple[int, int], ...], bool]] = []
    ninstr = 0
    pc = start
    cp = wtr.cp
    defs: Dict[int, Any] = {}  # register -> statically proven CodeObject
    while True:
        if pc >= n:
            # Run off the end: exit to pc n, where the trampoline's
            # block fetch raises IndexError exactly like the legacy
            # loop's instruction fetch would.
            exits.append((K_FALL, n, ninstr, wtr.snapshot(), False))
            wtr.return_exit(len(exits) - 1)
            break
        if pc != start and pc in leader_set and ninstr >= TRACE_LIMIT:
            exits.append((K_FALL, pc, ninstr, wtr.snapshot(), False))
            wtr.return_exit(len(exits) - 1)
            break
        ins = instrs[pc]
        op = ins[0]
        if op == OP_BRF or op == OP_BRT or op == OP_LDBRF or op == OP_LDBRT:
            if op == OP_LDBRF or op == OP_LDBRT:
                wtr.emit((OP_LD, ins[1], ins[2], ins[3]))
                ninstr += 1
                defs.pop(ins[1], None)
                src, target = ins[1], ins[4]
                negate = op == OP_LDBRT
            else:
                src, target = ins[1], ins[2]
                negate = op == OP_BRT
            ninstr += 1
            wtr.branch_head(src)
            snap = wtr.snapshot()
            taken_id = len(exits)
            exits.append((K_FALL, target, ninstr, snap, True))
            if ninstr >= TRACE_LIMIT:
                fall_id = len(exits)
                exits.append((K_FALL, pc + 1, ninstr, snap, False))
                wtr.branch_exit_both(src, negate, taken_id, fall_id)
                if pc + 1 not in leader_set:
                    leader_set.add(pc + 1)
                    pending.append(pc + 1)
                break
            wtr.branch_exit(src, negate, taken_id)
            pc += 1
        elif op == OP_JMP:
            ninstr += 1
            wtr.dc += 1
            target = ins[1]
            if target > pc and ninstr < TRACE_LIMIT:
                pc = target
            else:
                exits.append((K_FALL, target, ninstr, wtr.snapshot(), False))
                wtr.return_exit(len(exits) - 1)
                break
        elif op == OP_CALL:
            ninstr += 1
            wtr.dc += 1
            wtr.count(ACC_CALL)
            exits.append((K_CALL, (ins[1], pc + 1), ninstr, wtr.snapshot(), False))
            wtr.return_exit(len(exits) - 1)
            if callees is not None:
                callees[(start, len(exits) - 1)] = defs.get(cp)
            break
        elif op == OP_TAILCALL:
            ninstr += 1
            wtr.dc += 1
            wtr.count(ACC_TAIL)
            exits.append((K_TAIL, ins[1], ninstr, wtr.snapshot(), False))
            wtr.return_exit(len(exits) - 1)
            if callees is not None:
                callees[(start, len(exits) - 1)] = defs.get(cp)
            break
        elif op == OP_CALLCC:
            ninstr += 1
            wtr.dc += 1
            wtr.count(ACC_CALL)
            wtr.count(ACC_CC_CAP)
            exits.append((K_CALLCC, pc + 1, ninstr, wtr.snapshot(), False))
            wtr.return_exit(len(exits) - 1)
            break
        elif op == OP_RETURN:
            ninstr += 1
            wtr.dc += 1
            exits.append((K_RET, None, ninstr, wtr.snapshot(), False))
            wtr.return_exit(len(exits) - 1)
            break
        elif op == OP_HALT:
            ninstr += 1
            wtr.dc += 1
            exits.append((K_HALT, None, ninstr, wtr.snapshot(), False))
            wtr.return_exit(len(exits) - 1)
            break
        else:
            for comp in _expand(ins):
                wtr.emit(comp)
                ninstr += 1
                cop = comp[0]
                if cop == OP_CLOSURE or cop == OP_CLO_ALLOC:
                    defs[comp[1]] = comp[2]
                elif cop == OP_MOV:
                    value = defs.get(comp[2])
                    if value is None:
                        defs.pop(comp[1], None)
                    else:
                        defs[comp[1]] = value
                elif cop == OP_CLO_REF:
                    value = slot_env.get(comp[2]) if slot_env else None
                    if value is None:
                        defs.pop(comp[1], None)
                    else:
                        defs[comp[1]] = value
                elif cop == OP_SWAP:
                    # A permutation moves proven facts exactly as it
                    # moves values.
                    a, b = comp[1], comp[2]
                    va, vb = defs.pop(a, None), defs.pop(b, None)
                    if vb is not None:
                        defs[a] = vb
                    if va is not None:
                        defs[b] = va
                elif cop == OP_PERMI:
                    rs = comp[1]
                    olds = [defs.pop(r, None) for r in rs]
                    for i, r in enumerate(rs):
                        value = olds[(i + 1) % len(rs)]
                        if value is not None:
                            defs[r] = value
                elif cop in _DST_OPS:
                    defs.pop(comp[1], None)
            pc += 1
    return exits


class TraceModule:
    """One code object's generated trace module, before instantiation:
    the source text, the trace records (``(start, fn_name, exits)``),
    the const-pool bindings the source references, and — when built
    with ``track_callees`` — the statically-proven callee map.  This
    is the unit the artifact cache persists (source is re-``compile``-
    able, consts are picklable once primitives are named; see
    :mod:`repro.vm.artifact`) and the AOT emitter splices into a
    whole-program module (:mod:`repro.vm.aotemit`)."""

    __slots__ = ("n", "records", "source", "const_values", "callees")

    def __init__(self, n, records, source, const_values, callees) -> None:
        self.n = n
        self.records = records
        self.source = source
        self.const_values = const_values
        self.callees = callees


def build_trace_module(
    code,
    cost_model,
    cp_index: int,
    name_prefix: str = "_b",
    consts: Optional[_ConstPool] = None,
    track_callees: bool = False,
    slot_env: Optional[Dict[int, Any]] = None,
) -> TraceModule:
    """Generate (without executing) one code object's trace module.

    *name_prefix* namespaces the trace function names (the AOT emitter
    packs every code object's traces into one module); *consts* lets
    callers share a const pool across code objects the same way.
    *slot_env* (with ``track_callees``) is this code's proven
    closure-slot contents — see
    :func:`repro.vm.callgraph.closure_slot_callees`.
    """
    instrs = predecode_code(code)
    n = len(instrs)
    leaders = _find_leaders(instrs)
    leader_set = set(leaders)
    pending = list(leaders)
    if consts is None:
        consts = _ConstPool()
    load_latency = cost_model.load_latency
    store_extra = cost_model.store_cost - 1
    callees: Optional[Dict[Tuple[int, int], Any]] = (
        {} if track_callees else None
    )

    sources: List[str] = []
    records: List[Tuple[int, str, Any]] = []
    built = set()
    while pending:
        start = pending.pop()
        if start in built:
            continue
        built.add(start)
        name = f"{name_prefix}{start}"
        wtr = _TraceWriter(name, consts, cp_index, load_latency, store_extra)
        exits = _build_trace(
            start, instrs, n, leader_set, pending, wtr, callees, slot_env
        )
        sources.append(wtr.source())
        records.append((start, name, tuple(exits)))

    return TraceModule(
        n, tuple(records), "\n\n".join(sources), consts.values, callees
    )


def base_namespace() -> Dict[str, Any]:
    """The names every generated trace references beyond its consts."""
    from repro.vm.aotrt import VMClosure

    return {
        "VMClosure": VMClosure,
        "Pair": Pair,
        "NIL": NIL,
        "UNSPECIFIED": UNSPECIFIED,
    }


def instantiate_blocks(code, module_code, records, const_values, n):
    """Execute a compiled trace module and assemble (and cache on
    ``code.fast_blocks``) the pc-indexed block table."""
    namespace = base_namespace()
    namespace.update(const_values)
    exec(module_code, namespace)  # noqa: S102 - trusted generated code

    blocks: List[Optional[Tuple[Any, Any]]] = [None] * n
    for start, name, exits in records:
        blocks[start] = (namespace[name], exits)
    code.fast_blocks = blocks
    return blocks


def compile_blocks(code, cost_model, cp_index: int, dump=None):
    """Compile one code object's fused coded stream into a trace table.

    Returns (and caches on ``code.fast_blocks``) a list indexed by pc;
    entries exist at trace leaders and are ``(fn, exits)`` pairs — see
    the module docstring for both halves.  *dump*, when given, is
    called with the full generated module source (for debugging and
    documentation; nothing else keeps it).
    """
    tm = build_trace_module(code, cost_model, cp_index)
    if dump is not None:
        dump(tm.source)
    module_code = compile(tm.source, f"<blocks:{code.label}>", "exec")
    return instantiate_blocks(code, module_code, tm.records, tm.const_values, tm.n)
