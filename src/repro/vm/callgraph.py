"""Dynamic activation classification — the instrumentation behind
Table 2.

Every procedure activation is classified on retirement into one of the
paper's four categories:

* ``syntactic-leaf``         — the procedure contains no (non-tail)
  call sites at all;
* ``non-syntactic-leaf``     — it has call sites but this activation
  executed none (an *effective leaf*);
* ``non-syntactic-internal`` — it made calls at run time but has paths
  without calls (``ret ∉ St ∩ Sf``);
* ``syntactic-internal``     — every path through it calls.

Tail calls retire the current activation and start a new one (footnote
1: tail calls are jumps, not calls), so an activation's ``made_call``
reflects only the non-tail calls it performed itself.
"""

from __future__ import annotations

from typing import Dict, List

from repro.astnodes import CodeObject

CATEGORIES = (
    "syntactic-leaf",
    "non-syntactic-leaf",
    "non-syntactic-internal",
    "syntactic-internal",
)


class _Activation:
    __slots__ = ("code", "made_call")

    def __init__(self, code: CodeObject) -> None:
        self.code = code
        self.made_call = False


class ActivationClassifier:
    """Shadow call stack maintained by the VM."""

    def __init__(self) -> None:
        self.stack: List[_Activation] = []
        self.counts: Dict[str, int] = {c: 0 for c in CATEGORIES}

    # -- events -------------------------------------------------------------

    def on_call(self, code: CodeObject) -> None:
        if self.stack:
            self.stack[-1].made_call = True
        self.stack.append(_Activation(code))

    def on_tail_call(self, code: CodeObject) -> None:
        if self.stack:
            self._retire(self.stack.pop())
        self.stack.append(_Activation(code))

    def on_return(self) -> None:
        if self.stack:
            self._retire(self.stack.pop())

    def unwind_to(self, depth: int) -> None:
        """A continuation invocation abandons activations above *depth*."""
        while len(self.stack) > depth:
            self._retire(self.stack.pop())

    def finish(self) -> None:
        """Retire whatever remains (e.g. the entry activation at halt)."""
        while self.stack:
            self._retire(self.stack.pop())

    # -- classification --------------------------------------------------------

    def _retire(self, act: _Activation) -> None:
        self.counts[classify(act.code, act.made_call)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fractions(self) -> Dict[str, float]:
        total = self.total
        if total == 0:
            return {c: 0.0 for c in CATEGORIES}
        return {c: self.counts[c] / total for c in CATEGORIES}

    @property
    def effective_leaf_fraction(self) -> float:
        """The paper's headline number: activations that made no call."""
        f = self.fractions()
        return f["syntactic-leaf"] + f["non-syntactic-leaf"]


def classify(code: CodeObject, made_call: bool) -> str:
    if code.syntactic_leaf:
        return "syntactic-leaf"
    if not made_call:
        return "non-syntactic-leaf"
    if code.always_calls:
        return "syntactic-internal"
    return "non-syntactic-internal"
