"""Dynamic activation classification — the instrumentation behind
Table 2.

Every procedure activation is classified on retirement into one of the
paper's four categories:

* ``syntactic-leaf``         — the procedure contains no (non-tail)
  call sites at all;
* ``non-syntactic-leaf``     — it has call sites but this activation
  executed none (an *effective leaf*);
* ``non-syntactic-internal`` — it made calls at run time but has paths
  without calls (``ret ∉ St ∩ Sf``);
* ``syntactic-internal``     — every path through it calls.

Tail calls retire the current activation and start a new one (footnote
1: tail calls are jumps, not calls), so an activation's ``made_call``
reflects only the non-tail calls it performed itself.

The classifier sits on the VM's call/return hot path, so it avoids
per-activation allocation: the shadow stack is a pair of parallel
lists (code objects and made-call flags), the four counters live in an
integer array, and each code object's two possible categories (made a
call / didn't) are resolved once and cached.  ``counts`` presents the
familiar name-keyed dict view.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.astnodes import CodeObject

CATEGORIES = (
    "syntactic-leaf",
    "non-syntactic-leaf",
    "non-syntactic-internal",
    "syntactic-internal",
)

_CATEGORY_INDEX = {name: i for i, name in enumerate(CATEGORIES)}


class ActivationClassifier:
    """Shadow call stack maintained by the VM."""

    def __init__(self) -> None:
        self.stack: List[CodeObject] = []
        self._made: List[bool] = []
        self._tally: List[int] = [0, 0, 0, 0]
        # code -> (category index if it made no call, index if it did)
        self._by_code: Dict[CodeObject, Tuple[int, int]] = {}

    # -- events -------------------------------------------------------------

    def on_call(self, code: CodeObject) -> None:
        made = self._made
        if made:
            made[-1] = True
        self.stack.append(code)
        made.append(False)

    def on_tail_call(self, code: CodeObject) -> None:
        stack = self.stack
        if stack:
            self._retire(stack.pop(), self._made.pop())
        stack.append(code)
        self._made.append(False)

    def on_return(self) -> None:
        if self.stack:
            self._retire(self.stack.pop(), self._made.pop())

    def unwind_to(self, depth: int) -> None:
        """A continuation invocation abandons activations above *depth*."""
        while len(self.stack) > depth:
            self._retire(self.stack.pop(), self._made.pop())

    def finish(self) -> None:
        """Retire whatever remains (e.g. the entry activation at halt)."""
        while self.stack:
            self._retire(self.stack.pop(), self._made.pop())

    # -- classification --------------------------------------------------------

    def _retire(self, code: CodeObject, made_call: bool) -> None:
        pair = self._by_code.get(code)
        if pair is None:
            pair = (
                _CATEGORY_INDEX[classify(code, False)],
                _CATEGORY_INDEX[classify(code, True)],
            )
            self._by_code[code] = pair
        self._tally[pair[1] if made_call else pair[0]] += 1

    @property
    def counts(self) -> Dict[str, int]:
        tally = self._tally
        return {name: tally[i] for i, name in enumerate(CATEGORIES)}

    @property
    def total(self) -> int:
        return sum(self._tally)

    def fractions(self) -> Dict[str, float]:
        total = self.total
        if total == 0:
            return {c: 0.0 for c in CATEGORIES}
        tally = self._tally
        return {name: tally[i] / total for i, name in enumerate(CATEGORIES)}

    @property
    def effective_leaf_fraction(self) -> float:
        """The paper's headline number: activations that made no call."""
        f = self.fractions()
        return f["syntactic-leaf"] + f["non-syntactic-leaf"]


def classify(code: CodeObject, made_call: bool) -> str:
    if code.syntactic_leaf:
        return "syntactic-leaf"
    if not made_call:
        return "non-syntactic-leaf"
    if code.always_calls:
        return "syntactic-internal"
    return "non-syntactic-internal"
