"""Dynamic activation classification — the instrumentation behind
Table 2.

Every procedure activation is classified on retirement into one of the
paper's four categories:

* ``syntactic-leaf``         — the procedure contains no (non-tail)
  call sites at all;
* ``non-syntactic-leaf``     — it has call sites but this activation
  executed none (an *effective leaf*);
* ``non-syntactic-internal`` — it made calls at run time but has paths
  without calls (``ret ∉ St ∩ Sf``);
* ``syntactic-internal``     — every path through it calls.

Tail calls retire the current activation and start a new one (footnote
1: tail calls are jumps, not calls), so an activation's ``made_call``
reflects only the non-tail calls it performed itself.

The classifier sits on the VM's call/return hot path, so it avoids
per-activation allocation: the shadow stack is a pair of parallel
lists (code objects and made-call flags), the four counters live in an
integer array, and each code object's two possible categories (made a
call / didn't) are resolved once and cached.  ``counts`` presents the
familiar name-keyed dict view.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.astnodes import CodeObject

CATEGORIES = (
    "syntactic-leaf",
    "non-syntactic-leaf",
    "non-syntactic-internal",
    "syntactic-internal",
)

_CATEGORY_INDEX = {name: i for i, name in enumerate(CATEGORIES)}


class ActivationClassifier:
    """Shadow call stack maintained by the VM."""

    def __init__(self) -> None:
        self.stack: List[CodeObject] = []
        self._made: List[bool] = []
        self._tally: List[int] = [0, 0, 0, 0]
        # code -> (category index if it made no call, index if it did)
        self._by_code: Dict[CodeObject, Tuple[int, int]] = {}

    # -- events -------------------------------------------------------------

    def on_call(self, code: CodeObject) -> None:
        made = self._made
        if made:
            made[-1] = True
        self.stack.append(code)
        made.append(False)

    def on_tail_call(self, code: CodeObject) -> None:
        stack = self.stack
        if stack:
            self._retire(stack.pop(), self._made.pop())
        stack.append(code)
        self._made.append(False)

    def on_return(self) -> None:
        if self.stack:
            self._retire(self.stack.pop(), self._made.pop())

    def unwind_to(self, depth: int) -> None:
        """A continuation invocation abandons activations above *depth*."""
        while len(self.stack) > depth:
            self._retire(self.stack.pop(), self._made.pop())

    def finish(self) -> None:
        """Retire whatever remains (e.g. the entry activation at halt)."""
        while self.stack:
            self._retire(self.stack.pop(), self._made.pop())

    # -- classification --------------------------------------------------------

    def _retire(self, code: CodeObject, made_call: bool) -> None:
        pair = self._by_code.get(code)
        if pair is None:
            pair = (
                _CATEGORY_INDEX[classify(code, False)],
                _CATEGORY_INDEX[classify(code, True)],
            )
            self._by_code[code] = pair
        self._tally[pair[1] if made_call else pair[0]] += 1

    @property
    def counts(self) -> Dict[str, int]:
        tally = self._tally
        return {name: tally[i] for i, name in enumerate(CATEGORIES)}

    @property
    def total(self) -> int:
        return sum(self._tally)

    def fractions(self) -> Dict[str, float]:
        total = self.total
        if total == 0:
            return {c: 0.0 for c in CATEGORIES}
        tally = self._tally
        return {name: tally[i] / total for i, name in enumerate(CATEGORIES)}

    @property
    def effective_leaf_fraction(self) -> float:
        """The paper's headline number: activations that made no call."""
        f = self.fractions()
        return f["syntactic-leaf"] + f["non-syntactic-leaf"]


def classify(code: CodeObject, made_call: bool) -> str:
    if code.syntactic_leaf:
        return "syntactic-leaf"
    if not made_call:
        return "non-syntactic-leaf"
    if code.always_calls:
        return "syntactic-internal"
    return "non-syntactic-internal"


#: Poison marker for a closure slot with conflicting or unknown stores.
_CONFLICT = object()


def closure_slot_callees(
    codes,
) -> Dict[CodeObject, Dict[int, CodeObject]]:
    """Whole-program closure-slot analysis for the AOT emitter.

    For each code object X, determine which slots of X's closures
    provably hold a closure of exactly one statically-known code across
    *every* closure of X the program can create.  Closures are created
    only by ``closure``/``clo_alloc`` and slots are written only by
    those creations and ``clo_set``, so scanning every store site is
    exhaustive: a slot whose stores all carry closures of the same code
    Y maps to Y; any unknown or conflicting store poisons the slot.  If
    a ``clo_set`` base closure cannot be identified, the whole analysis
    is abandoned (the store could target any slot of any code).

    Register knowledge is tracked per basic block (reset at every
    branch/jump target and return address), which is conservative and
    sound: the recursive-binding pattern the allocator emits
    (``clo_alloc`` then ``clo_set`` backpatching in the same block)
    resolves, and everything murkier degrades to "not proven" — never
    to a wrong callee.  The result feeds :func:`proves_direct_call`
    through the trace builder's callee tracking
    (:func:`repro.vm.blockcompile.build_trace_module`).
    """
    # Lazy import: this function runs at build time only; the runtime
    # slice an emitted module pulls in must not grow by it.
    from repro.vm import predecode as P

    prim_ops = (
        P.OP_PRIM0, P.OP_PRIM1, P.OP_PRIM2, P.OP_PRIM3, P.OP_PRIMN,
        P.OP_PRIMX,
    )
    stores: Dict[Tuple[int, int], Any] = {}
    by_id: Dict[int, CodeObject] = {}

    def record(base: CodeObject, slot: int, value: Optional[CodeObject]):
        by_id[id(base)] = base
        key = (id(base), slot)
        if value is None:
            stores[key] = _CONFLICT
        else:
            seen = stores.get(key)
            if seen is None:
                stores[key] = value
            elif seen is not value:
                stores[key] = _CONFLICT

    for code in codes:
        instrs = P.predecode_code(code)
        leaders = set()
        for pc, ins in enumerate(instrs):
            op = ins[0]
            if op == P.OP_BRF or op == P.OP_BRT:
                leaders.add(ins[2])
                leaders.add(pc + 1)
            elif op == P.OP_LDBRF or op == P.OP_LDBRT:
                leaders.add(ins[4])
                leaders.add(pc + 1)
            elif op == P.OP_JMP:
                leaders.add(ins[1])
            elif op == P.OP_CALL or op == P.OP_CALLCC:
                leaders.add(pc + 1)

        defs: Dict[int, CodeObject] = {}
        for pc, ins in enumerate(instrs):
            if pc in leaders:
                defs = {}
            op = ins[0]
            if op == P.OP_CLOSURE:
                for i, src in enumerate(ins[3]):
                    record(ins[2], i, defs.get(src))
                defs[ins[1]] = ins[2]
            elif op == P.OP_CLO_ALLOC:
                defs[ins[1]] = ins[2]
            elif op == P.OP_CLO_SET:
                base = defs.get(ins[1])
                if base is None:
                    # A slot store through an unidentified closure could
                    # hit anything: no proof survives.
                    return {}
                record(base, ins[2], defs.get(ins[3]))
            elif op == P.OP_MOV:
                value = defs.get(ins[2])
                if value is None:
                    defs.pop(ins[1], None)
                else:
                    defs[ins[1]] = value
            elif op == P.OP_MOVM:
                for dst, src in ins[1]:
                    value = defs.get(src)
                    if value is None:
                        defs.pop(dst, None)
                    else:
                        defs[dst] = value
            elif op == P.OP_LDM:
                for dst, _slot, _kind in ins[1]:
                    defs.pop(dst, None)
            elif op in (
                P.OP_LD, P.OP_LI, P.OP_LD_OUT, P.OP_CLO_REF,
                P.OP_LDBRF, P.OP_LDBRT, *prim_ops,
            ):
                defs.pop(ins[1], None)
            # Stores, branches, jumps, calls, returns, halt write no
            # register (call clobbers are covered by the pc+1 leader
            # reset).

    result: Dict[CodeObject, Dict[int, CodeObject]] = {}
    for (base_id, slot), value in stores.items():
        if value is _CONFLICT:
            continue
        result.setdefault(by_id[base_id], {})[slot] = value
    return result


def proves_direct_call(callee: Optional[CodeObject], argc: int) -> bool:
    """Whether a call site may be collapsed into a direct transfer.

    *callee* is what the trace builder proved the closure-pointer
    register holds at the site (None when nothing is proven — the
    closure came from a load, a move, or another trace).  Collapsing is
    sound only when the proof exists **and** the site's argument count
    matches the callee's arity, because the dynamic dispatch path the
    collapse removes is exactly the closure type test plus that arity
    check.  An arity mismatch must keep the dynamic path so the runtime
    error message is identical to the interpreted loops'.  The AOT
    emitter (:mod:`repro.vm.aotemit`) consults this for every
    call/tail-call exit.
    """
    return callee is not None and len(callee.params) == argc
