"""The virtual machine.

An in-order, single-issue register machine with a load-latency
scoreboard.  Every stack access is an explicit instruction carrying its
reason, so the Table 3 "stack references" metric is exact, and the
cycle model exposes exactly the effect the paper attributes to eager
restores: a restore issued right after a call has usually finished its
memory latency by the time the value is used, while a lazy reload right
before the use stalls.

Two dispatch loops execute the same semantics:

* ``_run`` — the **legacy loop**: string-tag dispatch straight over the
  symbolic instruction lists.  It is the reference implementation, the
  only loop with the poison-checking ``debug`` mode, and the baseline
  the fast path's speedup is measured against.
* ``_run_fast`` — the **fast loop** (``CompilerConfig.vm_fast``, the
  default): a block trampoline over the code compiled by
  ``repro.vm.blockcompile`` from the pre-decoded, superinstruction-
  fused stream (``repro.vm.predecode``).  Each basic block is one
  generated straight-line Python function; the trampoline performs one
  indexed fetch and one call per block, applies the block's static
  counter deltas, and handles every control transfer (calls, returns,
  branches, ``call/cc``) with byte-for-byte the legacy loop's
  semantics.  Counter deltas accumulate in a local array (flushed
  exactly at procedure transitions, so per-procedure profiles still
  conserve).  Counters, cycles, values, output and profiles are
  bit-identical to the legacy loop; ``tests/vm/test_predecode_equiv``
  and the fuzz oracle's ``vm-fast`` invariant enforce that.  On an
  error the fast loop's counters may lag the exact crash point by the
  instructions since the last flush (the legacy loop's are live), and
  the instruction budget is checked per block rather than per
  instruction; no counter or output is compared on error paths.

Both loops release oversized stacks: a deep-recursion phase can grow
the stack list to hundreds of thousands of slots, and before this fix
a following leaf-loop phase kept all of it alive for the rest of the
run.  At procedure return, when the live prefix has fallen below a
quarter of capacity (and capacity is above a floor), the list is
truncated back to the live prefix plus headroom.

Supported beyond the paper's core: full re-invocable continuations
(``call/cc``) via stack copying, in the spirit of Hieb/Dybvig (the
paper's [11]), needed by the ``ctak`` benchmark.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.backend.codegen import CompiledProgram
from repro.runtime.primitives import PRIMITIVES
from repro.runtime.values import OutputPort, SchemeError

# The VM's runtime value types and the stack-release policy constants
# live in repro.vm.aotrt (the compiler-free runtime slice shared with
# AOT-emitted modules); this module remains their public import path.
from repro.vm.aotrt import (  # noqa: F401 - re-exported public API
    POISON,
    STACK_HEADROOM,
    STACK_MIN_CAPACITY,
    STACK_SHRINK_TRIGGER,
    VMClosure,
    VMContinuation,
    VMError,
)
from repro.vm.blockcompile import (
    ACC_READS,
    ACC_SIZE,
    ACC_SWAP,
    ACC_WRITES,
    K_CALL,
    K_CALLCC,
    K_FALL,
    K_RET,
    K_TAIL,
    compile_blocks,
)
from repro.vm.callgraph import ActivationClassifier
from repro.vm.counters import Counters
from repro.vm.predecode import KIND_INDEX, KIND_NAMES


class Machine:
    """Executes a :class:`CompiledProgram`."""

    def __init__(
        self,
        compiled: CompiledProgram,
        debug: bool = False,
        max_instructions: Optional[int] = None,
        profiler: Optional[Any] = None,
        vm_fast: Optional[bool] = None,
    ) -> None:
        self.compiled = compiled
        self.config = compiled.config
        self.regfile = compiled.regfile
        self.debug = debug
        self.max_instructions = max_instructions
        self.counters = Counters()
        self.classifier = ActivationClassifier()
        # Optional repro.observe.VMProfiler; the dispatch loop only
        # touches it at procedure boundaries, behind an is-None guard.
        self.profiler = profiler
        if profiler is not None:
            profiler.counters = self.counters
        self.port = OutputPort()
        self.result: Any = None
        # Loop selection: an explicit vm_fast argument overrides the
        # config (differential tests run both loops on one compiled
        # program); the poison-checking debug mode always takes the
        # legacy loop.
        if vm_fast is None:
            vm_fast = self.config.vm_fast
        self.vm_fast = bool(vm_fast) and not debug
        # Stack-release telemetry (see the module docstring): final
        # list capacity and number of truncations, for the regression
        # test and `repro bench` reporting.
        self.stack_capacity = 0
        self.stack_shrinks = 0

    # ------------------------------------------------------------------

    def run(self) -> Any:
        try:
            if self.vm_fast:
                return self._run_fast()
            return self._run()
        except SchemeError as exc:
            # Annotate with the procedure that was executing (read from
            # the interpreter loop's frame — zero cost on the hot path).
            tb = exc.__traceback__
            while tb is not None:
                if tb.tb_frame.f_code.co_name in ("_run", "_run_fast"):
                    code = tb.tb_frame.f_locals.get("code")
                    if code is not None and " (in " not in exc.message:
                        exc.message = f"{exc.message} (in {code.name})"
                        exc.args = (exc.message,)
                    break
                tb = tb.tb_next
            raise

    def observe_metrics(self, registry) -> None:
        """Fold this run's counters into a metrics registry: run totals
        as histogram observations (saves/restores/instructions per run —
        the Table 3 columns as distributions) and, when the run was
        profiled, per-procedure save/restore distributions (Figures
        1–2).  Called once per run, never from the dispatch loop."""
        from repro.observe.catalog import declare

        c = self.counters
        declare(registry, "repro_vm_runs").inc()
        declare(registry, "repro_vm_instructions").observe(c.instructions)
        declare(registry, "repro_vm_saves").observe(c.saves)
        declare(registry, "repro_vm_restores").observe(c.restores)
        if self.profiler is not None:
            proc_saves = declare(registry, "repro_vm_proc_saves")
            proc_restores = declare(registry, "repro_vm_proc_restores")
            for prof in self.profiler.profiles.values():
                proc_saves.observe(prof.saves)
                proc_restores.observe(prof.restores)

    def _run(self) -> Any:
        cm = self.config.cost_model
        load_latency = cm.load_latency
        store_extra = cm.store_cost - 1
        call_overhead = cm.call_overhead
        predict_mode = self.config.branch_prediction
        penalty = cm.branch_mispredict_penalty
        counters = self.counters
        classifier = self.classifier
        prof = self.profiler
        port = self.port
        prims = PRIMITIVES
        debug = self.debug
        nregs = len(self.regfile)
        num_arg_regs = self.regfile.num_arg_regs
        a0 = self.regfile.arg_regs[0].index if num_arg_regs else None
        RET = self.regfile.ret.index
        CP = self.regfile.cp.index
        RV = self.regfile.rv.index

        regs: List[Any] = [None] * nregs
        ready = [0] * nregs
        stack: List[Any] = [None] * 256
        cycle = 0
        executed = 0
        shrinks = 0
        shrink_trigger = STACK_SHRINK_TRIGGER
        min_capacity = STACK_MIN_CAPACITY
        headroom = STACK_HEADROOM
        max_instructions = self.max_instructions

        code = self.compiled.entry
        instrs = code.instructions
        pc = 0
        sp = 0
        self._ensure = None  # appease linters; capacity handled inline
        classifier.on_call(code)
        if prof is not None:
            prof.start(code)

        def ensure_capacity(limit: int) -> None:
            nonlocal stack
            if limit >= len(stack):
                stack.extend([None] * (limit - len(stack) + 256))

        ensure_capacity(code.frame_size + 64)
        if debug:
            for i in range(code.frame_size):
                stack[i] = POISON

        while True:
            instr = instrs[pc]
            op = instr[0]
            executed += 1
            cycle += 1
            if max_instructions is not None and executed > max_instructions:
                raise VMError("instruction budget exceeded")
            pc += 1

            if op == "prim":
                srcs = instr[3]
                args = []
                for s in srcs:
                    if type(s) is int:
                        t = ready[s]
                        if t > cycle:
                            cycle = t
                        args.append(regs[s])
                    else:
                        args.append(s[1])
                dst = instr[1]
                regs[dst] = prims[instr[2]].fn(args, port)
                ready[dst] = cycle
                counters.prim_calls += 1
            elif op == "mov":
                src = instr[2]
                t = ready[src]
                if t > cycle:
                    cycle = t
                dst = instr[1]
                regs[dst] = regs[src]
                ready[dst] = cycle
                counters.moves += 1
            elif op == "swap":
                ra = instr[1]
                rb = instr[2]
                t = ready[ra]
                if t > cycle:
                    cycle = t
                t = ready[rb]
                if t > cycle:
                    cycle = t
                regs[ra], regs[rb] = regs[rb], regs[ra]
                ready[ra] = cycle
                ready[rb] = cycle
                counters.swaps += 1
            elif op == "permi":
                rs = instr[1]
                for r in rs:
                    t = ready[r]
                    if t > cycle:
                        cycle = t
                vals = [regs[r] for r in rs]
                k = len(rs)
                for i, r in enumerate(rs):
                    regs[r] = vals[(i + 1) % k]
                    ready[r] = cycle
                counters.swaps += 1
            elif op == "li":
                dst = instr[1]
                regs[dst] = instr[2]
                ready[dst] = cycle
            elif op == "ld":
                dst = instr[1]
                value = stack[sp + instr[2]]
                if debug and value is POISON:
                    raise VMError(
                        f"read of uninitialized frame slot {instr[2]} in "
                        f"{code.label} (kind {instr[3]})"
                    )
                regs[dst] = value
                ready[dst] = cycle + load_latency
                counters.count_read(instr[3])
            elif op == "st":
                src = instr[2]
                t = ready[src]
                if t > cycle:
                    cycle = t
                stack[sp + instr[1]] = regs[src]
                cycle += store_extra
                counters.count_write(instr[3])
            elif op == "st_out":
                src = instr[2]
                t = ready[src]
                if t > cycle:
                    cycle = t
                idx = sp + code.frame_size + instr[1]
                ensure_capacity(idx)
                stack[idx] = regs[src]
                cycle += store_extra
                counters.count_write(instr[3])
            elif op == "ld_out":
                dst = instr[1]
                idx = sp + code.frame_size + instr[2]
                ensure_capacity(idx)
                value = stack[idx]
                if debug and value is POISON:
                    raise VMError(
                        f"read of uninitialized out slot {instr[2]} in {code.label}"
                    )
                regs[dst] = value
                ready[dst] = cycle + load_latency
                counters.count_read(instr[3])
            elif op == "brf" or op == "brt":
                src = instr[1]
                t = ready[src]
                if t > cycle:
                    cycle = t
                if op == "brf":
                    taken = regs[src] is False
                else:
                    taken = regs[src] is not False
                counters.branches += 1
                if predict_mode is not None:
                    # Static prediction: fall-through (not-taken) is
                    # the predicted path; the allocator lays the
                    # likely (call-free) branch on the fall-through.
                    if taken:
                        counters.mispredicts += 1
                        cycle += penalty
                if taken:
                    pc = instr[2]
            elif op == "jmp":
                pc = instr[1]
            elif op == "call":
                callee = regs[CP]
                cycle += call_overhead
                counters.calls += 1
                if type(callee) is VMClosure:
                    target = callee.code
                    if len(target.params) != instr[1]:
                        raise SchemeError(
                            f"{target.name}: expected {len(target.params)} "
                            f"argument(s), got {instr[1]}"
                        )
                    regs[RET] = (code, pc)
                    new_sp = sp + code.frame_size
                    ensure_capacity(new_sp + target.frame_size + 64)
                    if debug:
                        incoming = max(0, len(target.params) - num_arg_regs)
                        for i in range(incoming, target.frame_size):
                            stack[new_sp + i] = POISON
                    sp = new_sp
                    classifier.on_call(target)
                    if prof is not None:
                        prof.switch(target, cycle, executed)
                    code = target
                    instrs = code.instructions
                    pc = 0
                elif type(callee) is VMContinuation:
                    if instr[1] != 1:
                        raise SchemeError("continuation expects exactly 1 value")
                    if a0 is not None:
                        value = regs[a0]
                    else:
                        value = stack[sp + code.frame_size]
                    counters.continuations_invoked += 1
                    classifier.unwind_to(callee.class_depth)
                    stack = list(callee.snapshot)
                    ensure_capacity(len(stack) + 64)
                    sp = callee.sp
                    regs[RV] = value
                    ready[RV] = cycle
                    if prof is not None:
                        prof.resume(callee.code, cycle, executed)
                    code = callee.code
                    instrs = code.instructions
                    pc = callee.pc
                else:
                    raise SchemeError("attempt to apply a non-procedure", callee)
            elif op == "tailcall":
                callee = regs[CP]
                cycle += call_overhead
                counters.tail_calls += 1
                if type(callee) is VMClosure:
                    target = callee.code
                    if len(target.params) != instr[1]:
                        raise SchemeError(
                            f"{target.name}: expected {len(target.params)} "
                            f"argument(s), got {instr[1]}"
                        )
                    ensure_capacity(sp + target.frame_size + 64)
                    if debug:
                        incoming = max(0, len(target.params) - num_arg_regs)
                        for i in range(incoming, target.frame_size):
                            stack[sp + i] = POISON
                    classifier.on_tail_call(target)
                    if prof is not None:
                        prof.switch(target, cycle, executed)
                    code = target
                    instrs = code.instructions
                    pc = 0
                elif type(callee) is VMContinuation:
                    if instr[1] != 1:
                        raise SchemeError("continuation expects exactly 1 value")
                    if a0 is not None:
                        value = regs[a0]
                    else:
                        value = stack[sp]
                    counters.continuations_invoked += 1
                    classifier.unwind_to(callee.class_depth)
                    stack = list(callee.snapshot)
                    ensure_capacity(len(stack) + 64)
                    sp = callee.sp
                    regs[RV] = value
                    ready[RV] = cycle
                    if prof is not None:
                        prof.resume(callee.code, cycle, executed)
                    code = callee.code
                    instrs = code.instructions
                    pc = callee.pc
                else:
                    raise SchemeError("attempt to apply a non-procedure", callee)
            elif op == "callcc":
                fn = regs[CP]
                cycle += call_overhead
                counters.calls += 1
                counters.continuations_captured += 1
                if not (type(fn) is VMClosure):
                    raise SchemeError("call/cc: not a procedure", fn)
                target = fn.code
                if len(target.params) != 1:
                    raise SchemeError(
                        f"call/cc receiver {target.name} must take 1 argument"
                    )
                new_sp = sp + code.frame_size
                k = VMContinuation(
                    stack[:new_sp], sp, code, pc, len(classifier.stack)
                )
                regs[RET] = (code, pc)
                ensure_capacity(new_sp + target.frame_size + 64)
                if debug:
                    incoming = max(0, len(target.params) - num_arg_regs)
                    for i in range(incoming, target.frame_size):
                        stack[new_sp + i] = POISON
                if a0 is not None:
                    regs[a0] = k
                    ready[a0] = cycle
                else:
                    stack[new_sp] = k
                    counters.count_write("arg")
                sp = new_sp
                classifier.on_call(target)
                if prof is not None:
                    prof.switch(target, cycle, executed)
                code = target
                instrs = code.instructions
                pc = 0
            elif op == "return":
                addr = regs[RET]
                if addr is None:
                    self.result = regs[RV]
                    classifier.finish()
                    break
                ret_code, ret_pc = addr
                old_sp = sp
                sp -= ret_code.frame_size
                if len(stack) > shrink_trigger and old_sp < len(stack) >> 2:
                    # Low-water mark: the live prefix ends at old_sp
                    # (the returning frame's base); everything above is
                    # dead, so release the oversized tail.
                    new_len = old_sp + headroom
                    if new_len < min_capacity:
                        new_len = min_capacity
                    del stack[new_len:]
                    shrinks += 1
                classifier.on_return()
                if prof is not None:
                    prof.resume(ret_code, cycle, executed)
                code = ret_code
                instrs = code.instructions
                pc = ret_pc
            elif op == "clo_ref":
                dst = instr[1]
                regs[dst] = regs[CP].slots[instr[2]]
                ready[dst] = cycle
            elif op == "closure":
                srcs = instr[3]
                values = []
                for s in srcs:
                    t = ready[s]
                    if t > cycle:
                        cycle = t
                    values.append(regs[s])
                dst = instr[1]
                regs[dst] = VMClosure(instr[2], values)
                ready[dst] = cycle
                counters.closure_allocs += 1
            elif op == "clo_alloc":
                dst = instr[1]
                regs[dst] = VMClosure(instr[2], [None] * instr[3])
                ready[dst] = cycle
                counters.closure_allocs += 1
            elif op == "clo_set":
                src = instr[3]
                t = ready[src]
                if t > cycle:
                    cycle = t
                regs[instr[1]].slots[instr[2]] = regs[src]
            elif op == "halt":
                self.result = regs[RV]
                classifier.finish()
                break
            else:  # pragma: no cover - closed opcode set
                raise VMError(f"unknown opcode {op}")

        counters.instructions = executed
        counters.cycles = cycle
        self.stack_capacity = len(stack)
        self.stack_shrinks = shrinks
        if prof is not None:
            prof.finish(cycle, executed)
        return self.result

    # ------------------------------------------------------------------

    def _run_fast(self) -> Any:
        """The trace-compiled fast loop (``repro.vm.blockcompile``).

        Same observable semantics as :meth:`_run`: one indexed fetch
        and one generated-function call per trace, with every control
        transfer handled here exactly as the legacy loop does.  See
        the blockcompile module docstring for what makes it fast.
        """
        cm = self.config.cost_model
        call_overhead = cm.call_overhead
        predict = self.config.branch_prediction is not None
        penalty = cm.branch_mispredict_penalty
        counters = self.counters
        classifier = self.classifier
        prof = self.profiler
        port = self.port
        nregs = len(self.regfile)
        num_arg_regs = self.regfile.num_arg_regs
        a0 = self.regfile.arg_regs[0].index if num_arg_regs else None
        RET = self.regfile.ret.index
        CP = self.regfile.cp.index
        RV = self.regfile.rv.index
        ARG_WRITE_SLOT = ACC_WRITES + KIND_INDEX["arg"]
        shrink_trigger = STACK_SHRINK_TRIGGER
        min_capacity = STACK_MIN_CAPACITY
        headroom = STACK_HEADROOM

        regs: List[Any] = [None] * nregs
        ready = [0] * nregs
        stack: List[Any] = [None] * 256
        cycle = 0
        executed = 0
        shrinks = 0
        budget = self.max_instructions
        if budget is None:
            budget = 1 << 62

        # Counter accumulators, one slot per blockcompile ACC_* index.
        # Exits carry static (slot, delta) pairs; flush_counters
        # empties the array into `counters` exactly where the profiler
        # (or the caller) can observe them, so conservation holds.
        acc = [0] * ACC_SIZE

        def flush_counters() -> None:
            if acc[0]:
                counters.prim_calls += acc[0]
                acc[0] = 0
            if acc[1]:
                counters.moves += acc[1]
                acc[1] = 0
            if acc[2]:
                counters.branches += acc[2]
                acc[2] = 0
            if acc[3]:
                counters.mispredicts += acc[3]
                acc[3] = 0
            if acc[4]:
                counters.calls += acc[4]
                acc[4] = 0
            if acc[5]:
                counters.tail_calls += acc[5]
                acc[5] = 0
            if acc[6]:
                counters.closure_allocs += acc[6]
                acc[6] = 0
            if acc[7]:
                counters.continuations_captured += acc[7]
                acc[7] = 0
            if acc[8]:
                counters.continuations_invoked += acc[8]
                acc[8] = 0
            if acc[ACC_SWAP]:
                counters.swaps += acc[ACC_SWAP]
                acc[ACC_SWAP] = 0
            reads = counters.stack_reads
            for i in range(5):
                n = acc[ACC_READS + i]
                if n:
                    kind = KIND_NAMES[i]
                    reads[kind] = reads.get(kind, 0) + n
                    acc[ACC_READS + i] = 0
            writes = counters.stack_writes
            for i in range(5):
                n = acc[ACC_WRITES + i]
                if n:
                    kind = KIND_NAMES[i]
                    writes[kind] = writes.get(kind, 0) + n
                    acc[ACC_WRITES + i] = 0

        code = self.compiled.entry
        frame_size = code.frame_size
        blocks = code.fast_blocks
        if blocks is None:
            blocks = compile_blocks(code, cm, CP)
        pc = 0
        sp = 0
        classifier.on_call(code)
        if prof is not None:
            prof.start(code)

        limit = frame_size + 64
        if limit >= len(stack):
            stack.extend([None] * (limit - len(stack) + 256))

        while True:
            fn, exits = blocks[pc]
            cycle, ex = fn(regs, ready, stack, sp, cycle, port)
            kind, barg, nexec, counts, taken = exits[ex]
            executed += nexec
            if executed > budget:
                raise VMError("instruction budget exceeded")
            if counts:
                for slot, delta in counts:
                    acc[slot] += delta
            if taken:
                if predict:
                    # Static prediction: fall-through (not-taken) is
                    # the predicted path; the allocator lays the likely
                    # (call-free) branch on the fall-through.
                    acc[3] += 1
                    cycle += penalty

            if kind == K_FALL:
                pc = barg
            elif kind == K_CALL:
                cycle += call_overhead
                callee = regs[CP]
                if type(callee) is VMClosure:
                    target = callee.code
                    if len(target.params) != barg[0]:
                        raise SchemeError(
                            f"{target.name}: expected {len(target.params)} "
                            f"argument(s), got {barg[0]}"
                        )
                    regs[RET] = (code, barg[1])
                    new_sp = sp + frame_size
                    limit = new_sp + target.frame_size + 64
                    if limit >= len(stack):
                        stack.extend([None] * (limit - len(stack) + 256))
                    sp = new_sp
                    classifier.on_call(target)
                    if prof is not None:
                        flush_counters()
                        prof.switch(target, cycle, executed)
                    code = target
                    frame_size = target.frame_size
                    blocks = target.fast_blocks
                    if blocks is None:
                        blocks = compile_blocks(target, cm, CP)
                    pc = 0
                elif type(callee) is VMContinuation:
                    if barg[0] != 1:
                        raise SchemeError("continuation expects exactly 1 value")
                    if a0 is not None:
                        value = regs[a0]
                    else:
                        value = stack[sp + frame_size]
                    acc[8] += 1
                    classifier.unwind_to(callee.class_depth)
                    stack = list(callee.snapshot)
                    stack.extend([None] * 320)
                    sp = callee.sp
                    regs[RV] = value
                    ready[RV] = cycle
                    if prof is not None:
                        flush_counters()
                        prof.resume(callee.code, cycle, executed)
                    code = callee.code
                    frame_size = code.frame_size
                    blocks = code.fast_blocks
                    if blocks is None:
                        blocks = compile_blocks(code, cm, CP)
                    pc = callee.pc
                else:
                    raise SchemeError("attempt to apply a non-procedure", callee)
            elif kind == K_RET:
                addr = regs[RET]
                if addr is None:
                    self.result = regs[RV]
                    classifier.finish()
                    break
                ret_code, ret_pc = addr
                old_sp = sp
                sp -= ret_code.frame_size
                if len(stack) > shrink_trigger and old_sp < len(stack) >> 2:
                    # Low-water mark: the live prefix ends at old_sp
                    # (the returning frame's base); everything above is
                    # dead, so release the oversized tail.
                    new_len = old_sp + headroom
                    if new_len < min_capacity:
                        new_len = min_capacity
                    del stack[new_len:]
                    shrinks += 1
                classifier.on_return()
                if prof is not None:
                    flush_counters()
                    prof.resume(ret_code, cycle, executed)
                code = ret_code
                frame_size = ret_code.frame_size
                blocks = ret_code.fast_blocks
                if blocks is None:
                    blocks = compile_blocks(ret_code, cm, CP)
                pc = ret_pc
            elif kind == K_TAIL:
                cycle += call_overhead
                callee = regs[CP]
                if type(callee) is VMClosure:
                    target = callee.code
                    if len(target.params) != barg:
                        raise SchemeError(
                            f"{target.name}: expected {len(target.params)} "
                            f"argument(s), got {barg}"
                        )
                    limit = sp + target.frame_size + 64
                    if limit >= len(stack):
                        stack.extend([None] * (limit - len(stack) + 256))
                    classifier.on_tail_call(target)
                    if prof is not None:
                        flush_counters()
                        prof.switch(target, cycle, executed)
                    code = target
                    frame_size = target.frame_size
                    blocks = target.fast_blocks
                    if blocks is None:
                        blocks = compile_blocks(target, cm, CP)
                    pc = 0
                elif type(callee) is VMContinuation:
                    if barg != 1:
                        raise SchemeError("continuation expects exactly 1 value")
                    if a0 is not None:
                        value = regs[a0]
                    else:
                        value = stack[sp]
                    acc[8] += 1
                    classifier.unwind_to(callee.class_depth)
                    stack = list(callee.snapshot)
                    stack.extend([None] * 320)
                    sp = callee.sp
                    regs[RV] = value
                    ready[RV] = cycle
                    if prof is not None:
                        flush_counters()
                        prof.resume(callee.code, cycle, executed)
                    code = callee.code
                    frame_size = code.frame_size
                    blocks = code.fast_blocks
                    if blocks is None:
                        blocks = compile_blocks(code, cm, CP)
                    pc = callee.pc
                else:
                    raise SchemeError("attempt to apply a non-procedure", callee)
            elif kind == K_CALLCC:
                cycle += call_overhead
                callee = regs[CP]
                if not (type(callee) is VMClosure):
                    raise SchemeError("call/cc: not a procedure", callee)
                target = callee.code
                if len(target.params) != 1:
                    raise SchemeError(
                        f"call/cc receiver {target.name} must take 1 argument"
                    )
                new_sp = sp + frame_size
                k = VMContinuation(
                    stack[:new_sp], sp, code, barg, len(classifier.stack)
                )
                regs[RET] = (code, barg)
                limit = new_sp + target.frame_size + 64
                if limit >= len(stack):
                    stack.extend([None] * (limit - len(stack) + 256))
                if a0 is not None:
                    regs[a0] = k
                    ready[a0] = cycle
                else:
                    stack[new_sp] = k
                    acc[ARG_WRITE_SLOT] += 1
                sp = new_sp
                classifier.on_call(target)
                if prof is not None:
                    flush_counters()
                    prof.switch(target, cycle, executed)
                code = target
                frame_size = target.frame_size
                blocks = target.fast_blocks
                if blocks is None:
                    blocks = compile_blocks(target, cm, CP)
                pc = 0
            else:  # K_HALT
                self.result = regs[RV]
                classifier.finish()
                break

        flush_counters()
        counters.instructions = executed
        counters.cycles = cycle
        self.stack_capacity = len(stack)
        self.stack_shrinks = shrinks
        if prof is not None:
            prof.finish(cycle, executed)
        return self.result

    @property
    def output(self) -> str:
        return self.port.contents()
