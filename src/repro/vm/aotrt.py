"""The AOT runtime: everything an emitted module needs, compiler-free.

``repro aot build`` (:mod:`repro.vm.aotemit`) turns a compiled program
into one generated Python module: traces become top-level functions,
code objects become :class:`AotCode` instances, and the whole thing is
importable and runnable with **no compiler in-process** — importing an
emitted module must pull in only the runtime slice of the package
(primitives, datums, counters, the activation classifier, and this
module).  That constraint is why the VM's *runtime* value types live
here and not in :mod:`repro.vm.machine`:

* :class:`VMClosure`, :class:`VMContinuation`, :data:`POISON`, and
  :class:`VMError` are defined here and re-exported by ``machine`` (its
  import path stays the public one);
* the stack-release policy constants (:data:`STACK_SHRINK_TRIGGER`
  etc.) are defined here and shared by both trampolines, so the legacy
  loop, the fast loop, and AOT execution stay observationally
  indistinguishable;
* the exit-kind and counter-accumulator constants mirror
  ``repro.vm.blockcompile`` (which cannot be imported from here — it
  would drag the compiler in); ``tests/vm/test_aot.py`` asserts the
  two sets agree.

:func:`run_program` is the AOT trampoline: byte-for-byte the fast
loop's control-transfer semantics (``Machine._run_fast``), minus the
lazy block compilation (blocks are prebuilt at import time) and the
profiler hook (AOT runs are unprofiled), plus two extra exit kinds the
emitter produces when ``vm/callgraph.py`` proves a call site's callee
statically: :data:`K_CALL_DIRECT` and :data:`K_TAIL_DIRECT` skip the
closure type test and arity check because the emitter already
performed them at build time.  Counters, cycles, values, and output
are bit-identical to both interpreted loops; the AOT equivalence suite
asserts that over the benchsuite and a fuzz corpus.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.values import OutputPort, SchemeError
from repro.vm.callgraph import ActivationClassifier
from repro.vm.counters import Counters

# ---------------------------------------------------------------------------
# Stack-release policy (the low-water-mark fix): at a return, when the
# live prefix is below a quarter of capacity and capacity exceeds the
# trigger, truncate to the live prefix + headroom (but never below the
# floor).  Single source of truth for every dispatch loop — machine.py
# re-exports these.

STACK_SHRINK_TRIGGER = 8192
STACK_MIN_CAPACITY = 4096
STACK_HEADROOM = 256

# Exit kinds, mirroring repro.vm.blockcompile (K_FALL..K_HALT) plus the
# two AOT-only direct-call kinds the emitter produces.
K_FALL = 0      # continue at `arg` (fallthrough, jump, or taken branch)
K_CALL = 1      # non-tail call: `arg` is (argc, return_pc)
K_TAIL = 2      # tail call: `arg` is argc
K_CALLCC = 3    # continuation capture: `arg` is return_pc
K_RET = 4       # procedure return
K_HALT = 5      # program end
K_CALL_DIRECT = 6   # proven call: `arg` is (AotCode, return_pc)
K_TAIL_DIRECT = 7   # proven tail call: `arg` is AotCode

# Counter-accumulator slots, mirroring repro.vm.blockcompile.
ACC_PRIM = 0
ACC_MOV = 1
ACC_BRANCH = 2
ACC_MISS = 3
ACC_CALL = 4
ACC_TAIL = 5
ACC_CLO = 6
ACC_CC_CAP = 7
ACC_CC_INV = 8
ACC_READS = 9
ACC_WRITES = 14
ACC_SWAP = 19
ACC_SIZE = 20


class VMClosure:
    scheme_procedure = True
    __slots__ = ("code", "slots")

    def __init__(self, code: Any, slots: List[Any]) -> None:
        self.code = code
        self.slots = slots

    def __repr__(self) -> str:
        return f"#<procedure {self.code.name}>"


class VMContinuation:
    scheme_procedure = True
    __slots__ = ("snapshot", "sp", "code", "pc", "class_depth")

    def __init__(
        self,
        snapshot: List[Any],
        sp: int,
        code: Any,
        pc: int,
        class_depth: int,
    ) -> None:
        self.snapshot = snapshot
        self.sp = sp
        self.code = code
        self.pc = pc
        self.class_depth = class_depth

    def __repr__(self) -> str:
        return "#<continuation>"


class _Poison:
    __slots__ = ()

    def __repr__(self) -> str:
        return "#<uninitialized-frame-slot>"


POISON = _Poison()


class VMError(Exception):
    """Internal VM invariant violation (not a Scheme error)."""


# ---------------------------------------------------------------------------
# The emitted module's object model.


class AotCode:
    """A procedure in an emitted module: the runtime slice of a
    ``CodeObject`` (name for error messages, arity, frame size, the
    classifier's two static flags) plus its prebuilt trace table.
    ``blocks`` maps trace-leader pc -> ``(fn, exits)`` exactly like a
    code object's ``fast_blocks`` list, but as a dict (emitted modules
    only spell the leaders)."""

    __slots__ = (
        "name", "label", "nparams", "frame_size",
        "syntactic_leaf", "always_calls", "blocks",
    )

    def __init__(
        self,
        name: str,
        label: str,
        nparams: int,
        frame_size: int,
        syntactic_leaf: bool,
        always_calls: bool,
    ) -> None:
        self.name = name
        self.label = label
        self.nparams = nparams
        self.frame_size = frame_size
        self.syntactic_leaf = syntactic_leaf
        self.always_calls = always_calls
        self.blocks: Dict[int, Tuple[Any, Any]] = {}

    def __repr__(self) -> str:
        return f"<AotCode {self.label}>"


class AotProgram:
    """The whole emitted program: entry point, register-file geometry,
    cost-model scalars, and provenance (source cache key, config
    fingerprint, emitter version) — everything :func:`run_program`
    needs, baked at build time."""

    __slots__ = (
        "entry", "codes", "nregs", "a0", "ret", "cp", "rv",
        "call_overhead", "predict", "penalty", "kind_names",
        "direct_calls", "call_sites", "source_key", "fingerprint",
        "version",
    )

    def __init__(
        self,
        entry: AotCode,
        codes: Tuple[AotCode, ...],
        nregs: int,
        a0: Optional[int],
        ret: int,
        cp: int,
        rv: int,
        call_overhead: int,
        predict: bool,
        penalty: int,
        kind_names: Tuple[str, ...],
        direct_calls: int = 0,
        call_sites: int = 0,
        source_key: str = "",
        fingerprint: str = "",
        version: str = "",
    ) -> None:
        self.entry = entry
        self.codes = codes
        self.nregs = nregs
        self.a0 = a0
        self.ret = ret
        self.cp = cp
        self.rv = rv
        self.call_overhead = call_overhead
        self.predict = predict
        self.penalty = penalty
        self.kind_names = kind_names
        self.direct_calls = direct_calls
        self.call_sites = call_sites
        self.source_key = source_key
        self.fingerprint = fingerprint
        self.version = version


class AotResult:
    """What one AOT run produced (the runtime analogue of
    ``repro.pipeline.ExecutionResult``)."""

    __slots__ = (
        "value", "output", "counters", "classifier",
        "stack_capacity", "stack_shrinks",
    )

    def __init__(self, value, output, counters, classifier,
                 stack_capacity, stack_shrinks) -> None:
        self.value = value
        self.output = output
        self.counters = counters
        self.classifier = classifier
        self.stack_capacity = stack_capacity
        self.stack_shrinks = stack_shrinks


def datum(text: str) -> Any:
    """Parse one datum literal baked into an emitted module's const
    pool (the emitter spells non-trivial immediates as their written
    form; ``write_datum``/``read`` round-trip exactly)."""
    from repro.sexp.reader import read

    return read(text)


# ---------------------------------------------------------------------------
# The trampoline.


def run_program(
    program: AotProgram, max_instructions: Optional[int] = None
) -> AotResult:
    """Execute an emitted program; same observable semantics as
    ``Machine._run_fast`` (which see), with direct-call exits taking
    the proven path.  The instruction budget is checked per trace,
    exactly like the fast loop."""
    call_overhead = program.call_overhead
    predict = program.predict
    penalty = program.penalty
    counters = Counters()
    classifier = ActivationClassifier()
    port = OutputPort()
    a0 = program.a0
    RET = program.ret
    CP = program.cp
    RV = program.rv
    kind_names = program.kind_names
    shrink_trigger = STACK_SHRINK_TRIGGER
    min_capacity = STACK_MIN_CAPACITY
    headroom = STACK_HEADROOM

    regs: List[Any] = [None] * program.nregs
    ready = [0] * program.nregs
    stack: List[Any] = [None] * 256
    cycle = 0
    executed = 0
    shrinks = 0
    budget = max_instructions
    if budget is None:
        budget = 1 << 62

    # Counter accumulators, one slot per ACC_* index.  AOT runs are
    # unprofiled, so a single flush at the end conserves totals.
    acc = [0] * ACC_SIZE

    code = program.entry
    frame_size = code.frame_size
    blocks = code.blocks
    pc = 0
    sp = 0
    result: Any = None
    classifier.on_call(code)

    limit = frame_size + 64
    if limit >= len(stack):
        stack.extend([None] * (limit - len(stack) + 256))

    while True:
        fn, exits = blocks[pc]
        cycle, ex = fn(regs, ready, stack, sp, cycle, port)
        kind, barg, nexec, counts, taken = exits[ex]
        executed += nexec
        if executed > budget:
            raise VMError("instruction budget exceeded")
        if counts:
            for slot, delta in counts:
                acc[slot] += delta
        if taken:
            if predict:
                # Static prediction: fall-through (not-taken) is the
                # predicted path.
                acc[3] += 1
                cycle += penalty

        if kind == K_FALL:
            pc = barg
        elif kind == K_CALL_DIRECT:
            # Emitter-proven call: the callee closure's code and arity
            # were checked at build time, so no dynamic dispatch.
            cycle += call_overhead
            target, ret_pc = barg
            regs[RET] = (code, ret_pc)
            new_sp = sp + frame_size
            limit = new_sp + target.frame_size + 64
            if limit >= len(stack):
                stack.extend([None] * (limit - len(stack) + 256))
            sp = new_sp
            classifier.on_call(target)
            code = target
            frame_size = target.frame_size
            blocks = target.blocks
            pc = 0
        elif kind == K_TAIL_DIRECT:
            cycle += call_overhead
            target = barg
            limit = sp + target.frame_size + 64
            if limit >= len(stack):
                stack.extend([None] * (limit - len(stack) + 256))
            classifier.on_tail_call(target)
            code = target
            frame_size = target.frame_size
            blocks = target.blocks
            pc = 0
        elif kind == K_CALL:
            cycle += call_overhead
            callee = regs[CP]
            if type(callee) is VMClosure:
                target = callee.code
                if target.nparams != barg[0]:
                    raise SchemeError(
                        f"{target.name}: expected {target.nparams} "
                        f"argument(s), got {barg[0]}"
                    )
                regs[RET] = (code, barg[1])
                new_sp = sp + frame_size
                limit = new_sp + target.frame_size + 64
                if limit >= len(stack):
                    stack.extend([None] * (limit - len(stack) + 256))
                sp = new_sp
                classifier.on_call(target)
                code = target
                frame_size = target.frame_size
                blocks = target.blocks
                pc = 0
            elif type(callee) is VMContinuation:
                if barg[0] != 1:
                    raise SchemeError("continuation expects exactly 1 value")
                if a0 is not None:
                    value = regs[a0]
                else:
                    value = stack[sp + frame_size]
                acc[8] += 1
                classifier.unwind_to(callee.class_depth)
                stack = list(callee.snapshot)
                stack.extend([None] * 320)
                sp = callee.sp
                regs[RV] = value
                ready[RV] = cycle
                code = callee.code
                frame_size = code.frame_size
                blocks = code.blocks
                pc = callee.pc
            else:
                raise SchemeError("attempt to apply a non-procedure", callee)
        elif kind == K_RET:
            addr = regs[RET]
            if addr is None:
                result = regs[RV]
                classifier.finish()
                break
            ret_code, ret_pc = addr
            old_sp = sp
            sp -= ret_code.frame_size
            if len(stack) > shrink_trigger and old_sp < len(stack) >> 2:
                # Low-water mark: the live prefix ends at old_sp (the
                # returning frame's base); everything above is dead.
                new_len = old_sp + headroom
                if new_len < min_capacity:
                    new_len = min_capacity
                del stack[new_len:]
                shrinks += 1
            classifier.on_return()
            code = ret_code
            frame_size = ret_code.frame_size
            blocks = ret_code.blocks
            pc = ret_pc
        elif kind == K_TAIL:
            cycle += call_overhead
            callee = regs[CP]
            if type(callee) is VMClosure:
                target = callee.code
                if target.nparams != barg:
                    raise SchemeError(
                        f"{target.name}: expected {target.nparams} "
                        f"argument(s), got {barg}"
                    )
                limit = sp + target.frame_size + 64
                if limit >= len(stack):
                    stack.extend([None] * (limit - len(stack) + 256))
                classifier.on_tail_call(target)
                code = target
                frame_size = target.frame_size
                blocks = target.blocks
                pc = 0
            elif type(callee) is VMContinuation:
                if barg != 1:
                    raise SchemeError("continuation expects exactly 1 value")
                if a0 is not None:
                    value = regs[a0]
                else:
                    value = stack[sp]
                acc[8] += 1
                classifier.unwind_to(callee.class_depth)
                stack = list(callee.snapshot)
                stack.extend([None] * 320)
                sp = callee.sp
                regs[RV] = value
                ready[RV] = cycle
                code = callee.code
                frame_size = code.frame_size
                blocks = code.blocks
                pc = callee.pc
            else:
                raise SchemeError("attempt to apply a non-procedure", callee)
        elif kind == K_CALLCC:
            cycle += call_overhead
            callee = regs[CP]
            if not (type(callee) is VMClosure):
                raise SchemeError("call/cc: not a procedure", callee)
            target = callee.code
            if target.nparams != 1:
                raise SchemeError(
                    f"call/cc receiver {target.name} must take 1 argument"
                )
            new_sp = sp + frame_size
            k = VMContinuation(
                stack[:new_sp], sp, code, barg, len(classifier.stack)
            )
            regs[RET] = (code, barg)
            limit = new_sp + target.frame_size + 64
            if limit >= len(stack):
                stack.extend([None] * (limit - len(stack) + 256))
            if a0 is not None:
                regs[a0] = k
                ready[a0] = cycle
            else:
                stack[new_sp] = k
                acc[ACC_WRITES + kind_names.index("arg")] += 1
            sp = new_sp
            classifier.on_call(target)
            code = target
            frame_size = target.frame_size
            blocks = target.blocks
            pc = 0
        else:  # K_HALT
            result = regs[RV]
            classifier.finish()
            break

    # Flush the accumulators (identical slot layout to the fast loop).
    if acc[0]:
        counters.prim_calls += acc[0]
    if acc[1]:
        counters.moves += acc[1]
    if acc[2]:
        counters.branches += acc[2]
    if acc[3]:
        counters.mispredicts += acc[3]
    if acc[4]:
        counters.calls += acc[4]
    if acc[5]:
        counters.tail_calls += acc[5]
    if acc[6]:
        counters.closure_allocs += acc[6]
    if acc[7]:
        counters.continuations_captured += acc[7]
    if acc[8]:
        counters.continuations_invoked += acc[8]
    if acc[ACC_SWAP]:
        counters.swaps += acc[ACC_SWAP]
    reads = counters.stack_reads
    writes = counters.stack_writes
    for i, kind_name in enumerate(kind_names):
        n = acc[ACC_READS + i]
        if n:
            reads[kind_name] = reads.get(kind_name, 0) + n
        n = acc[ACC_WRITES + i]
        if n:
            writes[kind_name] = writes.get(kind_name, 0) + n
    counters.instructions = executed
    counters.cycles = cycle
    return AotResult(
        result, port.contents(), counters, classifier, len(stack), shrinks
    )


# ---------------------------------------------------------------------------
# The emitted module's __main__ entry.


def main(program: AotProgram, argv: Optional[List[str]] = None) -> int:
    """CLI for an emitted module (``python whatever_aot.py [--json]``).
    ``--json`` reports value/output/counters plus the list of loaded
    ``repro.*`` modules, which the AOT smoke checks to prove the
    compiler stayed out of the process."""
    from repro.sexp.writer import write_datum

    parser = argparse.ArgumentParser(
        description=f"AOT-compiled repro program (source {program.source_key[:12]})"
    )
    parser.add_argument("--json", action="store_true", help="JSON report")
    parser.add_argument(
        "--max-instructions", type=int, default=None, metavar="N",
        help="instruction budget",
    )
    args = parser.parse_args(argv)
    try:
        result = run_program(program, max_instructions=args.max_instructions)
    except SchemeError as exc:
        print(f"scheme error: {exc}", file=sys.stderr)
        return 2
    except VMError as exc:
        print(f"vm error: {exc}", file=sys.stderr)
        return 3
    if args.json:
        doc = {
            "value": write_datum(result.value),
            "output": result.output,
            "counters": result.counters.as_dict(),
            "activations": result.classifier.counts,
            "direct_calls": program.direct_calls,
            "call_sites": program.call_sites,
            "fingerprint": program.fingerprint,
            "version": program.version,
            "repro_modules": sorted(
                name for name in sys.modules
                if name == "repro" or name.startswith("repro.")
            ),
        }
        print(json.dumps(doc, indent=2))
    else:
        if result.output:
            sys.stdout.write(result.output)
        print(write_datum(result.value))
    return 0
