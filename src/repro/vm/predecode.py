"""Pre-decoding: the VM fast path's instruction form.

The symbolic ISA (``repro.backend.isa``) keeps instructions as
``[op, ...]`` lists with string opcodes and late-bound operands —
readable, patchable during code generation, and exactly what the
disassembler and the legacy dispatch loop consume.  Executing it,
however, pays for that flexibility on every instruction: a string-tag
match, a primitive-table lookup per ``prim``, a per-source
register-or-immediate type test, and a bounds-check *function call* per
out-of-frame access.

This module converts each :class:`~repro.astnodes.CodeObject`'s
instruction list once, at first execution, into a flat tuple stream.
It is the front half of the fast path: ``repro.vm.blockcompile``
consumes the decoded stream and compiles each extended basic block
into one generated Python function, which ``Machine._run_fast``
trampolines between.  The decoded form is what makes that codegen
simple:

* opcodes become small ints (the ``OP_*`` constants below), so the
  trace compiler switches on an int tag;
* per-opcode specialization is done here, not per execution: ``prim``
  splits into arity-specialized all-register variants
  (``PRIM1``/``PRIM2``/``PRIM3``/``PRIMN``), an all-immediate variant
  (``PRIM0``) and a mixed fallback (``PRIMX``), with the primitive's
  callable resolved once; ``brf``/``brt`` and the fused load-branches
  get separate opcodes so the generated code never re-tests polarity;
* ``ld_out``/``st_out`` offsets are folded with the (final)
  ``frame_size`` so the generated code computes one add;
* stack-reference *kinds* become indices into a 5-slot count array
  (see :data:`KIND_INDEX`), so the hot loop counts with a list index
  instead of a dict-method call;
* the superinstruction pass (:func:`repro.backend.peephole.
  fuse_superinstructions`) runs first, collapsing move chains, save and
  restore runs, and load-then-branch pairs.

The decoded stream is cached on ``code.fast_instructions``.  Decoding
is semantics-free: a fused op executes as its exact component sequence,
so counters, cycles, and profiles are bit-identical to the legacy loop
(asserted by ``tests/vm/test_predecode_equiv.py`` and the fuzz oracle's
``vm-fast`` invariant).
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.backend.isa import STACK_KINDS
from repro.backend.peephole import fuse_superinstructions
from repro.runtime.primitives import PRIMITIVES

# Fast-path opcodes.  Values are arbitrary but stable within a process;
# the dispatch chain in Machine._run_fast orders comparisons by dynamic
# frequency, not by value.
OP_LD = 0
OP_ST = 1
OP_MOV = 2
OP_LI = 3
OP_PRIM0 = 4
OP_PRIM1 = 5
OP_PRIM2 = 6
OP_PRIM3 = 7
OP_PRIMN = 8
OP_PRIMX = 9
OP_BRF = 10
OP_BRT = 11
OP_JMP = 12
OP_CALL = 13
OP_TAILCALL = 14
OP_CALLCC = 15
OP_RETURN = 16
OP_HALT = 17
OP_CLO_REF = 18
OP_CLOSURE = 19
OP_CLO_ALLOC = 20
OP_CLO_SET = 21
OP_LD_OUT = 22
OP_ST_OUT = 23
# Superinstructions (repro.backend.peephole.FUSED_OPS).
OP_MOVM = 24
OP_STM = 25
OP_LDM = 26
OP_LDBRF = 27
OP_LDBRT = 28
# Permutation instructions (permopt shuffle codegen).
OP_SWAP = 29
OP_PERMI = 30

#: Stack-reference kind -> index into the fast loop's count arrays.
KIND_INDEX = {kind: i for i, kind in enumerate(STACK_KINDS)}

#: Inverse of :data:`KIND_INDEX`, for flushing counts back into
#: :class:`~repro.vm.counters.Counters` dicts.
KIND_NAMES = tuple(STACK_KINDS)

#: Human-readable names for the OP_* constants (docs and debugging).
OP_NAMES = {
    value: name[3:].lower()
    for name, value in globals().items()
    if name.startswith("OP_")
}


def _decode_prim(instr: List[Any]) -> Tuple[Any, ...]:
    dst, name, srcs = instr[1], instr[2], instr[3]
    fn = PRIMITIVES[name].fn
    if all(type(s) is int for s in srcs):
        if len(srcs) == 1:
            return (OP_PRIM1, dst, fn, srcs[0])
        if len(srcs) == 2:
            return (OP_PRIM2, dst, fn, srcs[0], srcs[1])
        if len(srcs) == 3:
            return (OP_PRIM3, dst, fn, srcs[0], srcs[1], srcs[2])
        return (OP_PRIMN, dst, fn, tuple(srcs))
    if not any(type(s) is int for s in srcs):
        return (OP_PRIM0, dst, fn, tuple(s[1] for s in srcs))
    return (OP_PRIMX, dst, fn, tuple(srcs))


def decode_instruction(instr: List[Any], frame_size: int) -> Tuple[Any, ...]:
    """One symbolic (possibly fused) instruction -> one coded tuple."""
    op = instr[0]
    if op == "ld":
        return (OP_LD, instr[1], instr[2], KIND_INDEX[instr[3]])
    if op == "st":
        return (OP_ST, instr[1], instr[2], KIND_INDEX[instr[3]])
    if op == "mov":
        return (OP_MOV, instr[1], instr[2])
    if op == "swap":
        return (OP_SWAP, instr[1], instr[2])
    if op == "permi":
        return (OP_PERMI, tuple(instr[1]))
    if op == "li":
        return (OP_LI, instr[1], instr[2])
    if op == "prim":
        return _decode_prim(instr)
    if op == "brf":
        return (OP_BRF, instr[1], instr[2])
    if op == "brt":
        return (OP_BRT, instr[1], instr[2])
    if op == "jmp":
        return (OP_JMP, instr[1])
    if op == "call":
        return (OP_CALL, instr[1])
    if op == "tailcall":
        return (OP_TAILCALL, instr[1])
    if op == "callcc":
        return (OP_CALLCC,)
    if op == "return":
        return (OP_RETURN,)
    if op == "halt":
        return (OP_HALT,)
    if op == "clo_ref":
        return (OP_CLO_REF, instr[1], instr[2])
    if op == "closure":
        return (OP_CLOSURE, instr[1], instr[2], tuple(instr[3]))
    if op == "clo_alloc":
        return (OP_CLO_ALLOC, instr[1], instr[2], instr[3])
    if op == "clo_set":
        return (OP_CLO_SET, instr[1], instr[2], instr[3])
    if op == "ld_out":
        return (OP_LD_OUT, instr[1], frame_size + instr[2], KIND_INDEX[instr[3]])
    if op == "st_out":
        return (OP_ST_OUT, frame_size + instr[1], instr[2], KIND_INDEX[instr[3]])
    if op == "movm":
        return (OP_MOVM, instr[1])
    if op == "stm":
        return (
            OP_STM,
            tuple((slot, src, KIND_INDEX[kind]) for slot, src, kind in instr[1]),
        )
    if op == "ldm":
        return (
            OP_LDM,
            tuple((dst, slot, KIND_INDEX[kind]) for dst, slot, kind in instr[1]),
        )
    if op == "ldbr":
        opcode = OP_LDBRF if instr[4] == "brf" else OP_LDBRT
        return (opcode, instr[1], instr[2], KIND_INDEX[instr[3]], instr[5])
    raise ValueError(f"cannot pre-decode opcode {op!r}")


def predecode_code(code, fuse: bool = True) -> Tuple[Tuple[Any, ...], ...]:
    """Pre-decode (and cache) one code object's instruction stream.

    The cached stream is the *fused* form; pass ``fuse=False`` to get a
    fresh, unfused decoding (used by tests isolating dispatch cost from
    fusion).
    """
    if fuse and code.fast_instructions is not None:
        return code.fast_instructions
    instrs = code.instructions or []
    if fuse:
        instrs = fuse_superinstructions(instrs)
    frame_size = code.frame_size
    decoded = tuple(decode_instruction(i, frame_size) for i in instrs)
    if fuse:
        code.fast_instructions = decoded
    return decoded


def predecode_program(compiled) -> int:
    """Eagerly pre-decode every code object of a compiled program.

    The machine decodes lazily (most programs execute a fraction of
    their code objects); this exists for benchmarks that want decode
    cost out of the timed region.  Returns the number of code objects
    decoded.
    """
    for code in compiled.codes:
        predecode_code(code)
    return len(compiled.codes)
