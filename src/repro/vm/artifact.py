"""Pickle-safe compiled-executable artifacts — the cache's second tier.

The ISA tier of :mod:`repro.serve.cache` stores symbolic instruction
lists, so every warm process still pays predecode + blockcompile
before the fast path can run.  An *artifact* packs the derived
executable state alongside the program, so a warm worker (or the TCP
daemon) deserializes straight to runnable traces:

* the pre-decoded int-opcode streams (``code.fast_instructions``),
  with embedded primitive callables — nested closures, unpicklable —
  replaced by their :data:`~repro.runtime.primitives.PRIMITIVES`
  names and re-resolved on load;
* each code object's generated trace module, stored as
  ``marshal``-serialized Python code plus the trace records and the
  (primitive-named) const pool, so loading is ``marshal.loads`` +
  ``exec`` — no re-parse, no re-generation;
* the :class:`~repro.backend.codegen.CompiledProgram` itself, pickled
  in the *same* payload so the instruction streams and the program
  share one object graph (``closure`` operands reference the very
  ``CodeObject`` instances in ``compiled.codes``).

**Versioning / invalidation.**  An artifact is valid only for exactly
the build that wrote it.  The payload is framed
``MAGIC + sha256(body) + body`` (corruption ⇒
:class:`ArtifactCorrupt`) and stamps four invariants, checked on load
(mismatch ⇒ :class:`ArtifactStale`):

1. :data:`ARTIFACT_VERSION` — this module's format number;
2. ``importlib.util.MAGIC_NUMBER`` — ``marshal`` bytecode is
   interpreter-specific, so artifacts never cross Python versions;
3. the package ``__version__``;
4. the compiler-config fingerprint (when the caller supplies the
   expected one).

Every failure mode is a cache *miss*, never an error: the cache falls
back to the ISA tier or a fresh compile and rewrites the artifact.
See ``docs/aot.md`` for the format specification.
"""

from __future__ import annotations

import hashlib
import importlib.util
import marshal
import pickle
from typing import Any, Dict, List, Optional, Tuple

from repro import __version__
from repro.backend.codegen import CompiledProgram
from repro.runtime.primitives import PRIMITIVES
from repro.vm.blockcompile import build_trace_module, instantiate_blocks
from repro.vm.predecode import (
    OP_PRIM0,
    OP_PRIM1,
    OP_PRIM2,
    OP_PRIM3,
    OP_PRIMN,
    OP_PRIMX,
    predecode_code,
)

#: Artifact format number; bump on any layout change.  2: the decoded
#: stream may carry the permutation opcodes (swap/permi) and the trace
#: accumulator layout grew an ACC_SWAP slot — version-1 artifacts
#: degrade to misses.
ARTIFACT_VERSION = 2

#: Artifact framing magic (the ISA tier uses ``RPC1``).
MAGIC = b"RPA1"

_DIGEST_LEN = hashlib.sha256(b"").digest_size

_PRIM_OPS = frozenset((OP_PRIM0, OP_PRIM1, OP_PRIM2, OP_PRIM3, OP_PRIMN, OP_PRIMX))


class ArtifactError(Exception):
    """Base: this artifact cannot be used (always treated as a miss)."""


class ArtifactCorrupt(ArtifactError):
    """Framing, checksum, or decode damage — the entry is garbage."""


class ArtifactStale(ArtifactError):
    """A well-formed artifact from a different build (format, Python,
    package version, or config fingerprint)."""


def _prim_names() -> Dict[Any, str]:
    """Reverse map: resolved primitive callable -> catalog name.
    Primitive callables are per-process nested closures; the name is
    the only stable cross-process identity."""
    return {spec.fn: name for name, spec in PRIMITIVES.items()}


def _pack_instrs(instrs, by_fn: Dict[Any, str]):
    """Replace embedded primitive callables (operand 2 of every
    ``prim*`` opcode) with their names; everything else in the coded
    stream is picklable as-is."""
    out: List[Tuple[Any, ...]] = []
    for ins in instrs:
        if ins[0] in _PRIM_OPS:
            name = by_fn.get(ins[2])
            if name is None:  # pragma: no cover - closed primitive set
                raise ArtifactError(f"unregistered primitive in {ins!r}")
            out.append((ins[0], ins[1], ("prim", name)) + tuple(ins[3:]))
        else:
            out.append(ins)
    return tuple(out)


def _unpack_instrs(packed):
    prims = PRIMITIVES
    out: List[Tuple[Any, ...]] = []
    for ins in packed:
        if ins[0] in _PRIM_OPS:
            tag = ins[2]
            if not (type(tag) is tuple and len(tag) == 2 and tag[0] == "prim"):
                raise ArtifactCorrupt(f"malformed packed prim operand {tag!r}")
            spec = prims.get(tag[1])
            if spec is None:
                raise ArtifactCorrupt(f"unknown primitive {tag[1]!r}")
            out.append((ins[0], ins[1], spec.fn) + tuple(ins[3:]))
        else:
            out.append(ins)
    return tuple(out)


def _pack_consts(values: Dict[str, Any], by_fn: Dict[Any, str]):
    """Const-pool bindings with primitive callables named; code
    objects and datum immediates ride the shared pickle."""
    packed = []
    for name, value in values.items():
        prim = by_fn.get(value) if callable(value) else None
        if prim is not None:
            packed.append((name, "prim", prim))
        else:
            packed.append((name, "obj", value))
    return tuple(packed)


def _unpack_consts(packed) -> Dict[str, Any]:
    values: Dict[str, Any] = {}
    for name, kind, payload in packed:
        if kind == "prim":
            spec = PRIMITIVES.get(payload)
            if spec is None:
                raise ArtifactCorrupt(f"unknown primitive {payload!r}")
            values[name] = spec.fn
        elif kind == "obj":
            values[name] = payload
        else:
            raise ArtifactCorrupt(f"unknown const kind {kind!r}")
    return values


def build_artifact(compiled: CompiledProgram) -> bytes:
    """Serialize *compiled* together with its derived executable state.

    Builds (and, as a side effect, warms on the live program) every
    code object's decoded stream and trace module.  The result is
    self-contained: :func:`load_artifact` needs no compiler modules
    beyond this one's imports.
    """
    cost_model = compiled.config.cost_model
    cp_index = compiled.regfile.cp.index
    by_fn = _prim_names()

    payloads = []
    for code in compiled.codes:
        instrs = predecode_code(code)
        tm = build_trace_module(code, cost_model, cp_index)
        module_code = compile(tm.source, f"<blocks:{code.label}>", "exec")
        if code.fast_blocks is None:
            instantiate_blocks(code, module_code, tm.records, tm.const_values, tm.n)
        payloads.append((
            _pack_instrs(instrs, by_fn),
            marshal.dumps(module_code),
            tm.records,
            _pack_consts(tm.const_values, by_fn),
            tm.n,
        ))

    doc = {
        "format": ARTIFACT_VERSION,
        "py_magic": importlib.util.MAGIC_NUMBER,
        "version": __version__,
        "fingerprint": compiled.config.fingerprint(),
        "program": compiled,
        "codes": tuple(payloads),
    }
    # Strip the per-code caches for the pickle (they hold exec-compiled
    # functions); the packed payloads above carry the same state in
    # serializable form.
    stashed = [
        (code.fast_instructions, code.fast_blocks) for code in compiled.codes
    ]
    for code in compiled.codes:
        code.fast_instructions = None
        code.fast_blocks = None
    try:
        body = pickle.dumps(doc, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        for code, (fast, blocks) in zip(compiled.codes, stashed):
            code.fast_instructions = fast
            code.fast_blocks = blocks
    return MAGIC + hashlib.sha256(body).digest() + body


def load_artifact(
    data: bytes, expected_fingerprint: Optional[str] = None
) -> CompiledProgram:
    """Inverse of :func:`build_artifact`: validate, unpickle, and
    attach the executable state.  Raises :class:`ArtifactCorrupt` on
    damage and :class:`ArtifactStale` on any version/fingerprint skew;
    callers treat both as a miss."""
    header = len(MAGIC) + _DIGEST_LEN
    if len(data) < header or data[: len(MAGIC)] != MAGIC:
        raise ArtifactCorrupt("bad artifact header")
    digest = data[len(MAGIC) : header]
    body = data[header:]
    if hashlib.sha256(body).digest() != digest:
        raise ArtifactCorrupt("checksum mismatch")
    try:
        doc = pickle.loads(body)
    except Exception as exc:  # noqa: BLE001 - any unpickling failure is corruption
        raise ArtifactCorrupt(f"unpicklable body: {exc}") from exc
    if not isinstance(doc, dict) or "program" not in doc:
        raise ArtifactCorrupt("unexpected payload shape")
    if doc.get("format") != ARTIFACT_VERSION:
        raise ArtifactStale(
            f"artifact format {doc.get('format')!r} != {ARTIFACT_VERSION}"
        )
    if doc.get("py_magic") != importlib.util.MAGIC_NUMBER:
        raise ArtifactStale("bytecode magic mismatch (different Python)")
    if doc.get("version") != __version__:
        raise ArtifactStale(
            f"package version {doc.get('version')!r} != {__version__!r}"
        )
    if (
        expected_fingerprint is not None
        and doc.get("fingerprint") != expected_fingerprint
    ):
        raise ArtifactStale("config fingerprint mismatch")

    compiled = doc["program"]
    if not isinstance(compiled, CompiledProgram):
        raise ArtifactCorrupt(
            f"unexpected program type {type(compiled).__name__}"
        )
    payloads = doc.get("codes")
    if not isinstance(payloads, tuple) or len(payloads) != len(compiled.codes):
        raise ArtifactCorrupt("code payload count mismatch")
    try:
        for code, (packed, module_bytes, records, consts, n) in zip(
            compiled.codes, payloads
        ):
            code.fast_instructions = _unpack_instrs(packed)
            try:
                module_code = marshal.loads(module_bytes)
            except Exception as exc:  # noqa: BLE001 - marshal damage
                raise ArtifactCorrupt(f"bad trace bytecode: {exc}") from exc
            instantiate_blocks(
                code, module_code, records, _unpack_consts(consts), n
            )
    except ArtifactError:
        raise
    except Exception as exc:  # noqa: BLE001 - malformed payload shapes
        raise ArtifactCorrupt(f"malformed artifact payload: {exc}") from exc
    return compiled
