"""Pass 2: redundant-save elimination and restore placement (§3.2).

Two cooperating analyses over the Save-annotated tree:

* **Possibly-referenced sets** (backward): for each non-tail call, the
  variables possibly referenced after it but before the next call.
  With the eager strategy (§2.2) these are restored immediately after
  the call, trading occasional unnecessary loads for early issue that
  hides memory latency.  The ``ret`` pseudo-variable is referenced at
  every frame exit, so a call followed by a possible return restores
  the return address eagerly too.

* **Save-set threading** (forward): "When a save that is already in the
  save set is encountered, it is eliminated."  Assignment conversion
  guarantees a variable's home slot never goes stale, so one save per
  path suffices.  Elimination is disabled for the ``late`` strategy —
  its whole point is that saves sit at each call (§4).

The lazy restore strategy keeps the same analysis but defers the loads
to the code generator, which tracks stale registers per path and
reloads at first use (and at save-region exits for variables referenced
beyond the region — the paper's Figure 2c case).
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.astnodes import (
    Call,
    ClosureRef,
    Expr,
    Fix,
    If,
    Let,
    MakeClosure,
    PrimCall,
    Quote,
    Ref,
    Save,
    Seq,
    Var,
)
from repro.config import CompilerConfig
from repro.core.liveness import (
    CodeAllocation,
    _referenced_vars,
    _split_prim_operands,
)
from repro.core.registers import Register
from repro.errors import CompilerError

EMPTY: FrozenSet[Var] = frozenset()


def place_restores(alloc: CodeAllocation, config: CompilerConfig) -> None:
    """Annotate calls with their eager restore sets and eliminate
    redundant saves in ``alloc.code.body``."""
    body = alloc.code.body
    _possibly_referenced(body, frozenset([alloc.ret_var]), alloc, config)
    # Elimination is what makes the lazy placement's duplicate branch
    # saves safe, so it may only be disabled where saves really do sit
    # at each call: the caller-convention "late" ablation.  In callee
    # mode the caller-save variables (cp, argument registers) always
    # use the lazy placement — a duplicate save surviving there would
    # store a register a previous call already clobbered (and lazy
    # restores would not have reloaded), saving garbage.
    if config.save_strategy != "late" or config.save_convention == "callee":
        body, _ = _eliminate(body, EMPTY)
        alloc.code.body = body


# ---------------------------------------------------------------------------
# Backward: possibly-referenced-before-the-next-call
# ---------------------------------------------------------------------------


def _restorable(var: Var, alloc: CodeAllocation, config: CompilerConfig) -> bool:
    """Variables that live in registers a call destroys (and so need
    reloading).  In callee mode the ``t`` registers survive calls and
    ``ret`` is reloaded by its callee region instead."""
    loc = var.location
    if not isinstance(loc, Register):
        return False
    if config.save_convention == "callee":
        if loc.callee_save:
            return False
        if var is alloc.ret_var:
            return False
    return True


def _possibly_referenced(
    expr: Expr,
    after: FrozenSet[Var],
    alloc: CodeAllocation,
    config: CompilerConfig,
) -> FrozenSet[Var]:
    """Return the variables possibly referenced before the next call,
    entering *expr* given the set *after* it; annotates each non-tail
    call's ``restores``."""
    if isinstance(expr, Quote):
        return after
    if isinstance(expr, Ref):
        return after | {expr.var}
    if isinstance(expr, ClosureRef):
        return after | {alloc.cp_var}
    if isinstance(expr, PrimCall):
        # Mirror the code generator's staging: top-level variable /
        # closure-slot operands are read when the primitive issues
        # (after any embedded call); the rest evaluate left to right.
        deferred, ordered = _split_prim_operands(expr, alloc)
        current = after | deferred
        for arg in reversed(ordered):
            current = _possibly_referenced(arg, current, alloc, config)
        return current
    if isinstance(expr, Seq):
        current = after
        for sub in reversed(expr.exprs):
            current = _possibly_referenced(sub, current, alloc, config)
        return current
    if isinstance(expr, If):
        then_set = _possibly_referenced(expr.then, after, alloc, config)
        else_set = _possibly_referenced(expr.otherwise, after, alloc, config)
        return _possibly_referenced(expr.test, then_set | else_set, alloc, config)
    if isinstance(expr, Let):
        body_set = _possibly_referenced(expr.body, after, alloc, config) - {expr.var}
        return _possibly_referenced(expr.rhs, body_set, alloc, config)
    if isinstance(expr, MakeClosure):
        current = after
        for sub in reversed(expr.free_exprs):
            current = _possibly_referenced(sub, current, alloc, config)
        return current
    if isinstance(expr, Fix):
        current = _possibly_referenced(expr.body, after, alloc, config)
        for closure in reversed(expr.lambdas):
            current = _possibly_referenced(closure, current, alloc, config)
        return current - set(expr.vars)
    if isinstance(expr, Save):
        expr.refs_after = frozenset(v for v in after if v in set(expr.vars))
        inner = _possibly_referenced(expr.body, after, alloc, config)
        # Entering the region *reads* each saved variable's register
        # (the save is a store of it), so an earlier call must restore
        # them first.
        return inner | frozenset(expr.vars)
    if isinstance(expr, Call):
        return _possibly_referenced_call(expr, after, alloc, config)
    raise CompilerError(
        f"restore placement: unexpected node {type(expr).__name__}"
    )


def _possibly_referenced_call(
    call: Call,
    after: FrozenSet[Var],
    alloc: CodeAllocation,
    config: CompilerConfig,
) -> FrozenSet[Var]:
    subs = [call.fn, *call.args]
    if not call.tail:
        # Restore only registers that are also *live* after the call:
        # liveness is what drove the saves, so this intersection is the
        # paper's invariant that every restored register was saved.
        # (The possibly-referenced set can over-approximate liveness
        # through save-entry reads of conservatively-live variables.)
        live = call.live_after or EMPTY
        call.restores = sorted(
            (v for v in after if v in live and _restorable(v, alloc, config)),
            key=lambda v: v.uid,
        )
        boundary: FrozenSet[Var] = EMPTY
    else:
        # A tail call is a jump that consumes ret and the argument
        # registers; the frame sees no "after".
        call.restores = []
        boundary = frozenset([alloc.ret_var])
    # Operand evaluation order is the shuffler's choice, so inner calls
    # must treat every sibling's references as possibly-following.
    refs = [_referenced_vars(sub, alloc) for sub in subs]
    for i, sub in enumerate(subs):
        siblings: FrozenSet[Var] = EMPTY
        if len(subs) > 1:
            siblings = frozenset().union(*(refs[j] for j in range(len(subs)) if j != i))
        _possibly_referenced(sub, boundary | siblings, alloc, config)
    out = boundary
    for r in refs:
        out |= r
    return out


# ---------------------------------------------------------------------------
# Forward: redundant-save elimination
# ---------------------------------------------------------------------------


def _eliminate(
    expr: Expr, saved: FrozenSet[Var]
) -> Tuple[Expr, FrozenSet[Var]]:
    """Drop saves whose variables are already saved on every path
    reaching them.  Returns the rewritten node and the saved-set after
    it."""
    if isinstance(expr, (Quote, Ref, ClosureRef)):
        return expr, saved
    if isinstance(expr, Save):
        remaining = [v for v in expr.vars if v not in saved]
        body, saved_out = _eliminate(expr.body, saved | frozenset(expr.vars))
        if not remaining and not expr.callee_regs:
            return body, saved_out
        expr.vars = remaining
        expr.body = body
        return expr, saved_out
    if isinstance(expr, PrimCall):
        # Primitive operands are evaluated left to right by the back
        # end, so threading is sound here.
        current = saved
        new_args = []
        for arg in expr.args:
            arg, current = _eliminate(arg, current)
            new_args.append(arg)
        expr.args = new_args
        return expr, current
    if isinstance(expr, Seq):
        current = saved
        new_exprs = []
        for sub in expr.exprs:
            sub, current = _eliminate(sub, current)
            new_exprs.append(sub)
        expr.exprs = new_exprs
        return expr, current
    if isinstance(expr, If):
        expr.test, after_test = _eliminate(expr.test, saved)
        expr.then, saved_then = _eliminate(expr.then, after_test)
        expr.otherwise, saved_else = _eliminate(expr.otherwise, after_test)
        return expr, saved_then & saved_else
    if isinstance(expr, Let):
        expr.rhs, current = _eliminate(expr.rhs, saved)
        expr.body, current = _eliminate(expr.body, current)
        return expr, current
    if isinstance(expr, MakeClosure):
        current = saved
        new_subs = []
        for sub in expr.free_exprs:
            sub, current = _eliminate(sub, current)
            new_subs.append(sub)
        expr.free_exprs = new_subs
        return expr, current
    if isinstance(expr, Fix):
        current = saved
        new_closures = []
        for closure in expr.lambdas:
            closure, current = _eliminate(closure, current)
            new_closures.append(closure)
        expr.lambdas = new_closures
        expr.body, current = _eliminate(expr.body, current)
        return expr, current
    if isinstance(expr, Call):
        # The shuffler may reorder operands, so saves inside one operand
        # must not be credited to another: each operand sees only the
        # incoming saved-set, and additions are dropped at the join.
        expr.fn, _ = _eliminate(expr.fn, saved)
        new_args = []
        for arg in expr.args:
            arg, _ = _eliminate(arg, saved)
            new_args.append(arg)
        expr.args = new_args
        return expr, saved
    raise CompilerError(
        f"save elimination: unexpected node {type(expr).__name__}"
    )
