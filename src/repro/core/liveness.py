"""Pass 0: variable-level liveness and location assignment.

The paper performs liveness, shuffling and save placement in one
bottom-up pass for compile speed (§3.1); we factor liveness/location
assignment into its own pass for clarity (see DESIGN.md).  Two jobs:

1. **Liveness** — a backward walk computing, for every non-tail call,
   the set of variables live after it (the paper's
   ``S[call] = {r | r is live after the call}``), and for every binding
   form the set of variables live during its body (used to pick a free
   register).  The dedicated return-address register participates as a
   pseudo-variable that is "referenced" at procedure exit, which is
   exactly the §2.4 trick making ``ret ∈ St ∩ Sf`` detect inevitable
   calls.

2. **Location assignment** — incoming parameters take the argument
   registers ``a0..``; remaining parameters take incoming frame slots;
   ``let``/``fix``-bound variables take any register not occupied by a
   variable live during their scope ("any unused registers, including
   registers containing non-live argument values, are available for
   intraprocedural allocation", §1), else a spill slot.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set, Tuple

from repro.astnodes import (
    Call,
    ClosureRef,
    CodeObject,
    Expr,
    Fix,
    If,
    Let,
    MakeClosure,
    PrimCall,
    Quote,
    Ref,
    Save,
    Seq,
    Var,
    children,
    walk as _walk,
)
from repro.core.locations import FrameLayout, FrameSlot
from repro.core.registers import Register, RegisterFile
from repro.errors import CompilerError


class CodeAllocation:
    """Per-procedure allocation state threaded through the passes."""

    def __init__(self, code: CodeObject, regfile: RegisterFile) -> None:
        self.code = code
        self.regfile = regfile
        self.ret_var = Var("%ret")
        self.ret_var.location = regfile.ret
        self.ret_var.referenced = True
        # The closure pointer is clobbered by calls like any other
        # caller-save register; modelling it as a pseudo-variable lets
        # the ordinary save/restore machinery preserve it for
        # free-variable access after calls.
        self.cp_var = Var("%cp")
        self.cp_var.location = regfile.cp
        self.cp_var.referenced = True
        num_stack_params = max(0, len(code.params) - regfile.num_arg_regs)
        # Tail calls rewrite frame slots 0..m-1 with their outgoing
        # stack arguments, so locals must live above both the incoming
        # arguments and the widest tail call's argument area.
        max_tail_out = 0
        for node in _walk(code.body):
            if isinstance(node, Call) and node.tail:
                out = len(node.args) - regfile.num_arg_regs
                if out > max_tail_out:
                    max_tail_out = out
        self.layout = FrameLayout(max(num_stack_params, max_tail_out))
        self.layout.incoming_stack_args = num_stack_params
        self.register_vars: List[Var] = []  # register-resident vars incl. ret

    def home_for(self, var: Var) -> FrameSlot:
        """The frame slot used to save *var*'s register (allocated on
        first demand)."""
        if var.home is None:
            var.home = self.layout.alloc(f"home:{var.name}")
        return var.home


def analyze_code(code: CodeObject, regfile: RegisterFile) -> CodeAllocation:
    """Run liveness + location assignment over one code object.

    This is the paper's allocator in one call: liveness, then the
    scope-driven first-free binding assignment.  The allocator-strategy
    driver (``repro.alloc``) composes the pieces itself —
    :func:`analyze_liveness`, a strategy's binding assignment, then
    :func:`collect_register_vars`."""
    alloc = analyze_liveness(code, regfile)
    assign_bindings(alloc)
    collect_register_vars(alloc)
    return alloc


def analyze_liveness(code: CodeObject, regfile: RegisterFile) -> CodeAllocation:
    """Pass 0a: parameter placement (fixed by the calling convention)
    plus backward liveness.  Let/fix-bound variables have no locations
    yet; a binding-assignment strategy supplies them."""
    alloc = CodeAllocation(code, regfile)
    _assign_params(alloc)
    _live(code.body, frozenset([alloc.ret_var]), alloc)
    return alloc


def assign_bindings(alloc: CodeAllocation) -> None:
    """Pass 0b, the paper's strategy: walk binding forms outside-in and
    give each variable the first register free of every variable live
    during its scope (temporaries first, then idle argument registers),
    else a spill slot."""
    _assign_bindings(alloc.code.body, alloc)


def collect_register_vars(alloc: CodeAllocation) -> None:
    """Pass 0c: record the register-resident variables (including the
    ``ret``/``cp`` pseudo-variables) that the save machinery tracks."""
    _collect_register_vars(alloc)


def _assign_params(alloc: CodeAllocation) -> None:
    regfile = alloc.regfile
    for i, param in enumerate(alloc.code.params):
        if param.location is not None:
            raise CompilerError(f"parameter {param!r} already has a location")
        if i < regfile.num_arg_regs:
            param.location = regfile.arg_regs[i]
        else:
            param.location = FrameSlot(i - regfile.num_arg_regs)


# ---------------------------------------------------------------------------
# Backward liveness
# ---------------------------------------------------------------------------


def _live(expr: Expr, after: FrozenSet[Var], alloc: CodeAllocation) -> FrozenSet[Var]:
    """Return the variables live on entry to *expr*, given those live
    after it; annotates Call/Let/Fix nodes along the way."""
    if isinstance(expr, Quote):
        return after
    if isinstance(expr, Ref):
        return after | {expr.var}
    if isinstance(expr, ClosureRef):
        return after | {alloc.cp_var}
    if isinstance(expr, PrimCall):
        # The code generator evaluates primitive operands left to
        # right, but defers *top-level* variable/closure-slot operands
        # until the primitive issues — after any embedded call — so
        # those variables stay live throughout.
        deferred, ordered = _split_prim_operands(expr, alloc)
        live = after | deferred
        for arg in reversed(ordered):
            live = _live(arg, live, alloc)
        return live
    if isinstance(expr, If):
        live_then = _live(expr.then, after, alloc)
        live_else = _live(expr.otherwise, after, alloc)
        return _live(expr.test, live_then | live_else, alloc)
    if isinstance(expr, Let):
        body_live = _live(expr.body, after, alloc) - {expr.var}
        expr.busy = body_live
        return _live(expr.rhs, body_live, alloc)
    if isinstance(expr, Fix):
        body_live = _live(expr.body, after, alloc)
        live = body_live
        for closure in reversed(expr.lambdas):
            live = _live(closure, live, alloc)
        live = live - set(expr.vars)
        expr.busy = live
        return live
    if isinstance(expr, Call):
        # The argument evaluation order is chosen later by the greedy
        # shuffler ("we must perform register allocation, shuffling,
        # and live analysis in parallel", §2.3).  We stay
        # order-independent by treating every sibling's variables as
        # live while each operand is evaluated: a call nested inside
        # one operand then saves/restores anything any other operand
        # still needs, whatever order the shuffler picks.
        expr.live_after = after
        subs = [expr.fn, *expr.args]
        refs = [_referenced_vars(sub, alloc) for sub in subs]
        all_refs: FrozenSet[Var] = frozenset().union(*refs) if refs else frozenset()
        for i, sub in enumerate(subs):
            siblings: FrozenSet[Var] = frozenset().union(
                *(refs[j] for j in range(len(subs)) if j != i)
            ) if len(subs) > 1 else frozenset()
            _live(sub, after | siblings, alloc)
        live = after | all_refs
        expr.live_before = live
        return live
    if isinstance(expr, MakeClosure):
        live = after
        for sub in reversed(expr.free_exprs):
            live = _live(sub, live, alloc)
        return live
    if isinstance(expr, Seq):
        live = after
        for sub in reversed(expr.exprs):
            live = _live(sub, live, alloc)
        return live
    if isinstance(expr, Save):
        raise CompilerError("liveness must run before save placement")
    raise CompilerError(f"liveness: unexpected node {type(expr).__name__}")


def _split_prim_operands(
    expr: PrimCall, alloc: "CodeAllocation"
) -> "Tuple[FrozenSet[Var], List[Expr]]":
    """Partition a primitive's operands the way the code generator
    stages them: top-level variable / closure-slot operands are read at
    issue time (deferred set of variables); everything else is
    evaluated in order."""
    deferred: Set[Var] = set()
    ordered: List[Expr] = []
    for arg in expr.args:
        if isinstance(arg, Ref):
            deferred.add(arg.var)
        elif isinstance(arg, ClosureRef):
            deferred.add(alloc.cp_var)
        elif not isinstance(arg, Quote):
            ordered.append(arg)
    return frozenset(deferred), ordered


def _has_call(expr: Expr) -> bool:
    """True iff *expr* contains a procedure call (which clobbers the
    caller-save registers)."""
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Call):
            return True
        stack.extend(children(node))
    return False


def _referenced_vars(expr: Expr, alloc: "CodeAllocation") -> FrozenSet[Var]:
    """Free variables of a post-closure-conversion expression,
    including the ``cp`` pseudo-variable for closure-slot reads.

    Only *free* variables may appear in sibling live sets: a variable
    bound inside one call operand is out of scope in the others, and
    treating it as live there would let a save fire before its binding
    (and a later redundant-save elimination would then preserve a stale
    home slot).
    """
    if isinstance(expr, Ref):
        return frozenset([expr.var])
    if isinstance(expr, ClosureRef):
        return frozenset([alloc.cp_var])
    if isinstance(expr, Save):
        # Entering a save region reads each variable's register (the
        # saves are stores of them); restore placement and shuffle
        # dependencies must see those reads.
        return frozenset(expr.vars) | _referenced_vars(expr.body, alloc)
    if isinstance(expr, Let):
        return _referenced_vars(expr.rhs, alloc) | (
            _referenced_vars(expr.body, alloc) - {expr.var}
        )
    if isinstance(expr, Fix):
        out = _referenced_vars(expr.body, alloc)
        for closure in expr.lambdas:
            out |= _referenced_vars(closure, alloc)
        return out - set(expr.vars)
    out: FrozenSet[Var] = frozenset()
    for child in children(expr):
        out |= _referenced_vars(child, alloc)
    return out


# ---------------------------------------------------------------------------
# Location assignment for let/fix-bound variables
# ---------------------------------------------------------------------------


def _assign_bindings(expr: Expr, alloc: CodeAllocation) -> None:
    if isinstance(expr, (Quote, Ref, ClosureRef)):
        return
    if isinstance(expr, PrimCall):
        for arg in expr.args:
            _assign_bindings(arg, alloc)
        return
    if isinstance(expr, If):
        _assign_bindings(expr.test, alloc)
        _assign_bindings(expr.then, alloc)
        _assign_bindings(expr.otherwise, alloc)
        return
    if isinstance(expr, Seq):
        for sub in expr.exprs:
            _assign_bindings(sub, alloc)
        return
    if isinstance(expr, Let):
        _assign_bindings(expr.rhs, alloc)
        _assign_variable(expr.var, expr.busy, alloc)
        _assign_bindings(expr.body, alloc)
        return
    if isinstance(expr, Fix):
        taken: Set[Register] = set()
        for var in expr.vars:
            # Sibling fix variables are simultaneously live.
            chosen = _assign_variable(var, expr.busy, alloc, also_exclude=taken)
            if isinstance(chosen, Register):
                taken.add(chosen)
        for closure in expr.lambdas:
            _assign_bindings(closure, alloc)
        _assign_bindings(expr.body, alloc)
        return
    if isinstance(expr, Call):
        _assign_bindings(expr.fn, alloc)
        for arg in expr.args:
            _assign_bindings(arg, alloc)
        return
    if isinstance(expr, MakeClosure):
        for sub in expr.free_exprs:
            _assign_bindings(sub, alloc)
        return
    raise CompilerError(
        f"location assignment: unexpected node {type(expr).__name__}"
    )


def _assign_variable(
    var: Var,
    busy: FrozenSet[Var],
    alloc: CodeAllocation,
    also_exclude: Optional[Set[Register]] = None,
) -> object:
    """Give *var* a register not held by any variable in *busy*, else a
    spill slot.  Returns the chosen location."""
    if var.location is not None:
        raise CompilerError(f"variable {var!r} already has a location")
    occupied: Set[Register] = set(also_exclude or ())
    for other in busy:
        if isinstance(other.location, Register):
            occupied.add(other.location)
    regfile = alloc.regfile
    chosen: Optional[Register] = None
    for reg in regfile.temp_regs:
        if reg not in occupied:
            chosen = reg
            break
    if chosen is None:
        for reg in regfile.arg_regs:
            if reg not in occupied:
                chosen = reg
                break
    if chosen is not None:
        var.location = chosen
        return chosen
    var.location = alloc.layout.alloc(f"spill:{var.name}")
    return var.location


# Shared with the allocator-strategy model builder (repro.alloc.model),
# which must stage operand reads exactly the way liveness (and the code
# generator) do.
referenced_vars = _referenced_vars
split_prim_operands = _split_prim_operands


def _collect_register_vars(alloc: CodeAllocation) -> None:
    seen: Set[Var] = set()

    def visit(expr: Expr) -> None:
        if isinstance(expr, Ref):
            seen.add(expr.var)
            return
        if isinstance(expr, Let):
            seen.add(expr.var)
        if isinstance(expr, Fix):
            seen.update(expr.vars)
        for child in children(expr):
            visit(child)

    visit(alloc.code.body)
    seen.update(alloc.code.params)
    alloc.register_vars = [alloc.ret_var, alloc.cp_var] + [
        v for v in sorted(seen, key=lambda v: v.uid) if isinstance(v.location, Register)
    ]
