"""Back-compat home of the allocation driver.

The orchestration that lived here moved to :mod:`repro.alloc` when the
allocator became pluggable (``CompilerConfig.allocator`` selects
``lazy`` / ``linearscan`` / ``graphcolor``); this module re-exports the
public names so existing importers — the code generator, the pipeline,
tests — keep working.  New code should import from ``repro.alloc``.
"""

from __future__ import annotations

from repro.alloc.driver import ProgramAllocation, allocate_program

__all__ = ["ProgramAllocation", "allocate_program"]
