"""Orchestration of the register-allocation passes over a program.

Per code object, in order:

0. liveness + location assignment          (``repro.core.liveness``)
1. St/Sf analysis, branch-prediction annotation, save placement,
   shuffle planning                        (``savesets``/``saveplace``/``shuffle``)
2. redundant-save elimination + restores   (``restoreplace``)

The paper implements passes 1 and 2 as two linear traversals (§3); the
decomposition here is finer-grained but each sub-pass is still linear
in the program size (the shuffler's :math:`O(n^3)` is over the fixed
number of argument registers, §3.1).
"""

from __future__ import annotations

import time
from typing import Dict

from repro.astnodes import Call, CodeObject, If, Program, walk
from repro.config import CompilerConfig
from repro.core.liveness import CodeAllocation, analyze_code
from repro.core.registers import RegisterFile
from repro.core.restoreplace import place_restores
from repro.core.saveplace import place_saves
from repro.core.savesets import SaveAnalysis
from repro.core.shuffle import plan_shuffle


class ProgramAllocation:
    """The result of register allocation for a whole program."""

    def __init__(self, regfile: RegisterFile) -> None:
        self.regfile = regfile
        self.by_code: Dict[int, CodeAllocation] = {}
        self.analyses: Dict[int, SaveAnalysis] = {}
        self.pass_times: Dict[str, float] = {
            "liveness": 0.0,
            "save-placement": 0.0,
            "restore-placement": 0.0,
            "shuffle": 0.0,
        }

    def alloc_for(self, code: CodeObject) -> CodeAllocation:
        return self.by_code[code.uid]

    def analysis_for(self, code: CodeObject) -> SaveAnalysis:
        return self.analyses[code.uid]


def allocate_program(program: Program, config: CompilerConfig) -> ProgramAllocation:
    """Run all allocation passes over *program* (mutates the ASTs)."""
    regfile = RegisterFile(
        config.num_arg_regs,
        config.num_temp_regs,
        callee_save_temps=(config.save_convention == "callee"),
    )
    result = ProgramAllocation(regfile)
    for code in program.codes:
        _allocate_code(code, config, result)
    return result


def _allocate_code(
    code: CodeObject, config: CompilerConfig, result: ProgramAllocation
) -> None:
    times = result.pass_times

    t0 = time.perf_counter()
    alloc = analyze_code(code, result.regfile)
    times["liveness"] += time.perf_counter() - t0

    t0 = time.perf_counter()
    analysis = SaveAnalysis(alloc)
    analysis.analyze()
    if config.branch_prediction == "static-calls":
        _annotate_predictions(code, analysis)
    place_saves(alloc, analysis, config)
    times["save-placement"] += time.perf_counter() - t0

    t0 = time.perf_counter()
    place_restores(alloc, config)
    times["restore-placement"] += time.perf_counter() - t0

    t0 = time.perf_counter()
    for node in walk(code.body):
        if isinstance(node, Call):
            node.shuffle_plan = plan_shuffle(node, alloc, config.shuffle_strategy)
    times["shuffle"] += time.perf_counter() - t0

    result.by_code[code.uid] = alloc
    result.analyses[code.uid] = analysis


def _annotate_predictions(code: CodeObject, analysis: SaveAnalysis) -> None:
    """The §6 static branch-prediction heuristic: "paths without calls
    are assumed to be more likely than paths with calls" — predict the
    branch that can complete without calling."""
    from repro.core.shuffle import contains_call

    for node in walk(code.body):
        if not isinstance(node, If):
            continue
        then_calls = contains_call(node.then)
        else_calls = contains_call(node.otherwise)
        if then_calls and not else_calls:
            node.prediction = "else"
        elif else_calls and not then_calls:
            node.prediction = "then"
