"""The register file.

Mirrors the paper's run-time model (§1, §3): a set of registers is
dedicated to procedure arguments (``a0..a{c-1}``), a set to user
variables and compiler temporaries (``t0..t{l-1}``), plus the special
``ret`` (return address), ``cp`` (closure pointer) and ``rv`` (return
value) registers.  All of them are caller-save — destroyed by a call —
unless the callee-save configuration marks the ``t`` registers
callee-save (§2.4 / Table 5).

"Liveness information is collected using a bit vector for the
registers, implemented as an n-bit integer" (§3.1): register sets here
are plain Python ints used as bit vectors, exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict, Iterator, List


class Register:
    """One machine register."""

    __slots__ = ("name", "index", "kind", "callee_save")

    def __init__(self, name: str, index: int, kind: str, callee_save: bool = False) -> None:
        self.name = name
        self.index = index  # position in the register file and bit vector
        self.kind = kind  # 'arg' | 'temp' | 'special'
        self.callee_save = callee_save

    @property
    def mask(self) -> int:
        """Singleton bit-vector for this register (a 1-bit integer)."""
        return 1 << self.index

    def __repr__(self) -> str:
        return f"%{self.name}"


class RegisterFile:
    """The full register file for one compiler configuration.

    Register indices are stable: ``ret`` = 0, ``cp`` = 1, ``rv`` = 2,
    argument registers next, then user/temporary registers.
    """

    def __init__(
        self,
        num_arg_regs: int,
        num_temp_regs: int,
        callee_save_temps: bool = False,
    ) -> None:
        if num_arg_regs < 0 or num_temp_regs < 0:
            raise ValueError("register counts must be non-negative")
        self.num_arg_regs = num_arg_regs
        self.num_temp_regs = num_temp_regs
        self.callee_save_temps = callee_save_temps

        self.ret = Register("ret", 0, "special")
        self.cp = Register("cp", 1, "special")
        self.rv = Register("rv", 2, "special")
        # Local-allocation scratch registers: "Other registers are used
        # for local register allocation" (§1).  Present in every
        # configuration — including the no-argument-register baseline,
        # whose code generator still does local register allocation —
        # and never assigned to variables, so they are never live
        # across a call and need no saves.
        self.scratch_regs: List[Register] = [
            Register(f"s{i}", 3 + i, "scratch") for i in range(3)
        ]
        base = 3 + len(self.scratch_regs)
        self.arg_regs: List[Register] = [
            Register(f"a{i}", base + i, "arg") for i in range(num_arg_regs)
        ]
        self.temp_regs: List[Register] = [
            Register(
                f"t{i}",
                base + num_arg_regs + i,
                "temp",
                callee_save=callee_save_temps,
            )
            for i in range(num_temp_regs)
        ]
        self.all: List[Register] = [
            self.ret,
            self.cp,
            self.rv,
            *self.scratch_regs,
            *self.arg_regs,
            *self.temp_regs,
        ]
        self._by_name: Dict[str, Register] = {r.name: r for r in self.all}

    def __len__(self) -> int:
        return len(self.all)

    def __iter__(self) -> Iterator[Register]:
        return iter(self.all)

    def by_name(self, name: str) -> Register:
        return self._by_name[name]

    def by_index(self, index: int) -> Register:
        return self.all[index]

    @property
    def all_mask(self) -> int:
        """Bit vector with every register set — the paper's ``R``."""
        return (1 << len(self.all)) - 1

    def mask_to_registers(self, mask: int) -> List[Register]:
        """Decode a bit vector into the registers it names."""
        out = []
        for reg in self.all:
            if mask & reg.mask:
                out.append(reg)
        return out

    def caller_save_mask(self) -> int:
        """Bit vector of registers destroyed by a procedure call."""
        mask = 0
        for reg in self.all:
            if not reg.callee_save:
                mask |= reg.mask
        return mask

    def __repr__(self) -> str:
        return (
            f"<RegisterFile args={self.num_arg_regs} temps={self.num_temp_regs}"
            f"{' callee-save-temps' if self.callee_save_temps else ''}>"
        )
