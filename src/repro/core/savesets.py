"""Save-set analysis: the simple ``S[E]`` and revised ``St/Sf`` algorithms.

Section 2.1 of the paper.  For every expression ``E`` we compute:

* ``St[E]`` — the registers to save around ``E`` if ``E`` evaluates to
  true, and
* ``Sf[E]`` — the registers to save if it evaluates to false.

A register is saved around ``E`` iff it is in ``St[E] ∩ Sf[E]``.  The
universal set ``R`` (here :data:`TOP`) marks impossible outcomes —
``St[false] = R`` — so impossible paths do not restrict intersections.

The recursive cases follow the paper's control-flow-path reading
("along a path, union; across paths, intersection"):

* ``St[(seq E1 E2)] = (St[E1] ∩ Sf[E1]) ∪ St[E2]``
* ``St[(if E1 E2 E3)] = (St[E1] ∪ St[E2]) ∩ (Sf[E1] ∪ St[E3])``
* ``St[call] = Sf[call] = {r | r live after the call}``

and symmetrically for ``Sf``.  The simple algorithm of §2.1.1
(``S[(if E1 E2 E3)] = S[E1] ∪ (S[E2] ∩ S[E3])``) is also implemented,
both for the ablation benchmark and for the paper's stated relationship
``S[E] ⊆ St[E] ∩ Sf[E]`` which our property tests verify.

The element domain is the *variables* resident in registers (plus the
``ret`` pseudo-variable); the paper's bit-vector-of-registers view is
recovered by mapping each variable to its assigned register.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple, Union

from repro.astnodes import (
    Call,
    ClosureRef,
    Expr,
    Fix,
    If,
    Let,
    MakeClosure,
    PrimCall,
    Quote,
    Ref,
    Save,
    Seq,
    Var,
)
from repro.core.liveness import CodeAllocation
from repro.core.registers import Register
from repro.errors import CompilerError


class _Top:
    """The universal register set R (identity for intersection)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "R"


TOP = _Top()
RSet = Union[FrozenSet[Var], _Top]
EMPTY: FrozenSet[Var] = frozenset()

# Primitives whose result is never #f: their false branch is impossible.
_NEVER_FALSE_PRIMS = {
    "cons",
    "+",
    "-",
    "*",
    "quotient",
    "remainder",
    "modulo",
    "abs",
    "min",
    "max",
    "add1",
    "sub1",
    "length",
    "make-vector",
    "vector-length",
    "box",
    "string-append",
    "reverse",
    "char->integer",
    "integer->char",
}


def runion(a: RSet, b: RSet) -> RSet:
    """Union along a path (R absorbs)."""
    if a is TOP or b is TOP:
        return TOP
    return a | b


def rinter(a: RSet, b: RSet) -> RSet:
    """Intersection across paths (R is the identity)."""
    if a is TOP:
        return b
    if b is TOP:
        return a
    return a & b


def save_set(st: RSet, sf: RSet) -> FrozenSet[Var]:
    """``St ∩ Sf`` as a concrete set (an impossible expression —
    both R — needs no saves; it never completes)."""
    result = rinter(st, sf)
    return EMPTY if result is TOP else result


class SaveAnalysis:
    """Computes St/Sf (and the simple S) for one procedure body."""

    def __init__(self, alloc: CodeAllocation) -> None:
        self.alloc = alloc
        self.st: Dict[int, RSet] = {}
        self.sf: Dict[int, RSet] = {}
        self.simple: Dict[int, FrozenSet[Var]] = {}

    # -- public API --------------------------------------------------------

    def analyze(self) -> None:
        body = self.alloc.code.body
        self._revised(body)
        self._simple(body)

    def st_of(self, expr: Expr) -> RSet:
        return self.st[id(expr)]

    def sf_of(self, expr: Expr) -> RSet:
        return self.sf[id(expr)]

    def save_set_of(self, expr: Expr) -> FrozenSet[Var]:
        return save_set(self.st[id(expr)], self.sf[id(expr)])

    def simple_save_set_of(self, expr: Expr) -> FrozenSet[Var]:
        return self.simple[id(expr)]

    def always_calls(self, expr: Expr) -> bool:
        """True iff every path through *expr* makes a non-tail call —
        the §2.4 criterion ``ret ∈ St[E] ∩ Sf[E]``."""
        return self.alloc.ret_var in self.save_set_of(expr)

    def call_save_set(self, call: Call) -> FrozenSet[Var]:
        """The registers (register-resident variables) live after a
        non-tail call: the paper's ``S[call]``."""
        if call.live_after is None:
            raise CompilerError("liveness must run before save analysis")
        return frozenset(
            v for v in call.live_after if isinstance(v.location, Register)
        )

    # -- revised algorithm (§2.1.3) -----------------------------------------

    def _revised(self, expr: Expr) -> Tuple[RSet, RSet]:
        st, sf = self._revised_dispatch(expr)
        self.st[id(expr)] = st
        self.sf[id(expr)] = sf
        return st, sf

    def _revised_dispatch(self, expr: Expr) -> Tuple[RSet, RSet]:
        if isinstance(expr, Quote):
            if expr.value is False:
                return TOP, EMPTY
            return EMPTY, TOP
        if isinstance(expr, (Ref, ClosureRef)):
            return EMPTY, EMPTY
        if isinstance(expr, PrimCall):
            return self._revised_primcall(expr)
        if isinstance(expr, Seq):
            prefix: RSet = EMPTY
            for sub in expr.exprs[:-1]:
                st, sf = self._revised(sub)
                prefix = runion(prefix, rinter(st, sf))
            st, sf = self._revised(expr.exprs[-1])
            return runion(prefix, st), runion(prefix, sf)
        if isinstance(expr, Let):
            st1, sf1 = self._revised(expr.rhs)
            inevitable = rinter(st1, sf1)
            st2, sf2 = self._revised(expr.body)
            return runion(inevitable, st2), runion(inevitable, sf2)
        if isinstance(expr, If):
            st1, sf1 = self._revised(expr.test)
            st2, sf2 = self._revised(expr.then)
            st3, sf3 = self._revised(expr.otherwise)
            st = rinter(runion(st1, st2), runion(sf1, st3))
            sf = rinter(runion(st1, sf2), runion(sf1, sf3))
            return st, sf
        if isinstance(expr, Call):
            inner: RSet = EMPTY
            for sub in (expr.fn, *expr.args):
                st, sf = self._revised(sub)
                inner = runion(inner, rinter(st, sf))
            if expr.tail:
                # A tail call is a jump (footnote 1): the frame is dead,
                # so the call itself forces no saves.
                return inner, inner
            forced = runion(inner, self.call_save_set(expr))
            return forced, forced
        if isinstance(expr, MakeClosure):
            inner = EMPTY
            for sub in expr.free_exprs:
                st, sf = self._revised(sub)
                inner = runion(inner, rinter(st, sf))
            return inner, TOP  # a closure is never #f
        if isinstance(expr, Fix):
            prefix = EMPTY
            for closure in expr.lambdas:
                st, sf = self._revised(closure)
                prefix = runion(prefix, rinter(st, sf))
            st, sf = self._revised(expr.body)
            return runion(prefix, st), runion(prefix, sf)
        if isinstance(expr, Save):
            raise CompilerError("save analysis must run before save placement")
        raise CompilerError(f"save analysis: unexpected node {type(expr).__name__}")

    def _revised_primcall(self, expr: PrimCall) -> Tuple[RSet, RSet]:
        if expr.op == "not":
            st, sf = self._revised(expr.args[0])
            # Figure 1: St[(not E)] = Sf[E], Sf[(not E)] = St[E].
            return sf, st
        inner: RSet = EMPTY
        for arg in expr.args:
            st, sf = self._revised(arg)
            inner = runion(inner, rinter(st, sf))
        if expr.op in _NEVER_FALSE_PRIMS:
            return inner, TOP
        return inner, inner

    # -- simple algorithm (§2.1.1) -------------------------------------------

    def _simple(self, expr: Expr) -> FrozenSet[Var]:
        result = self._simple_dispatch(expr)
        self.simple[id(expr)] = result
        return result

    def _simple_dispatch(self, expr: Expr) -> FrozenSet[Var]:
        if isinstance(expr, (Quote, Ref, ClosureRef)):
            return EMPTY
        if isinstance(expr, PrimCall):
            out = EMPTY
            for arg in expr.args:
                out |= self._simple(arg)
            return out
        if isinstance(expr, Seq):
            out = EMPTY
            for sub in expr.exprs:
                out |= self._simple(sub)
            return out
        if isinstance(expr, Let):
            return self._simple(expr.rhs) | self._simple(expr.body)
        if isinstance(expr, If):
            s1 = self._simple(expr.test)
            s2 = self._simple(expr.then)
            s3 = self._simple(expr.otherwise)
            return s1 | (s2 & s3)
        if isinstance(expr, Call):
            out = self._simple(expr.fn)
            for arg in expr.args:
                out |= self._simple(arg)
            if expr.tail:
                return out
            return out | self.call_save_set(expr)
        if isinstance(expr, MakeClosure):
            out = EMPTY
            for sub in expr.free_exprs:
                out |= self._simple(sub)
            return out
        if isinstance(expr, Fix):
            out = EMPTY
            for closure in expr.lambdas:
                out |= self._simple(closure)
            return out | self._simple(expr.body)
        raise CompilerError(f"save analysis: unexpected node {type(expr).__name__}")
