"""Pass 1: save placement.

Inserts the paper's ``(save (x ...) E)`` forms.  "Save expressions are
introduced around procedure bodies and the then and else parts of if
expressions, unless both branches require the same register saves"
(§3.1) — when the branches agree, their common saves are already in the
enclosing node's ``St ∩ Sf`` and migrate to the enclosing insertion
point.

Strategies (§4):

* ``lazy``        — the revised ``St/Sf`` placement.
* ``lazy-simple`` — the §2.1.1 simple ``S[E]`` placement (too lazy on
                    short-circuit booleans; kept for the ablation).
* ``early``       — everything any call in the body needs is saved at
                    procedure entry: no redundant saves, but
                    non-syntactic leaf activations pay for calls they
                    never make.
* ``late``        — each call is wrapped with exactly the registers
                    live after it: effective leaves pay nothing, but
                    paths with several calls save repeatedly (pass 2's
                    redundant-save elimination is disabled for this
                    strategy, as in the paper's description).

Callee-save placement (§2.4, Table 5) wraps *callee regions* instead:
``early`` saves the used callee-save registers in the prologue;
``lazy`` pushes the region down into tail-position branches where a
call is inevitable (``ret ∈ St ∩ Sf``), so effective leaf paths never
touch them.
"""

from __future__ import annotations

from typing import FrozenSet, List, Set

from repro.astnodes import (
    Call,
    ClosureRef,
    Expr,
    Fix,
    If,
    Let,
    MakeClosure,
    PrimCall,
    Quote,
    Ref,
    Save,
    Seq,
    Var,
    walk,
)
from repro.config import CompilerConfig
from repro.core.liveness import CodeAllocation
from repro.core.registers import Register
from repro.core.savesets import SaveAnalysis
from repro.core.shuffle import contains_call
from repro.errors import CompilerError


def place_saves(
    alloc: CodeAllocation, analysis: SaveAnalysis, config: CompilerConfig
) -> None:
    """Wrap ``alloc.code.body`` with Save forms per the configuration.

    Also records ``always_calls`` on the code object (used by the
    Table 2 activation classifier)."""
    code = alloc.code
    code.always_calls = analysis.always_calls(code.body)
    if config.save_convention == "callee":
        _place_callee(alloc, analysis, config)
        return
    strategy = config.save_strategy
    scope = _entry_scope(alloc)
    if strategy in ("lazy", "lazy-simple"):
        simple = strategy == "lazy-simple"
        body = _wrap_lazy(code.body, analysis, alloc, simple, scope=scope)
        top = _set_of(code.body, analysis, simple) & scope
        code.body = _wrap(top, body, alloc)
    elif strategy == "early":
        body = _wrap_early(code.body, analysis, alloc)
        top = _all_call_saves(code.body, analysis) & scope
        code.body = _wrap(top, body, alloc)
    elif strategy == "late":
        code.body = _wrap_late(code.body, analysis, alloc)
    else:  # pragma: no cover - config validates strategies
        raise CompilerError(f"unknown save strategy {strategy}")


def _entry_scope(alloc: CodeAllocation) -> FrozenSet[Var]:
    """Variables already bound (and register-resident) on entry: the
    parameters plus the ``ret``/``cp`` pseudo-variables.  A save may
    only mention variables bound at its insertion point — a variable
    bound *inside* the region is saved at its own binding's insertion
    point instead."""
    return frozenset(
        [alloc.ret_var, alloc.cp_var]
        + [p for p in alloc.code.params if isinstance(p.location, Register)]
    )


def _set_of(
    expr: Expr, analysis: SaveAnalysis, simple: bool, keep=None
) -> FrozenSet[Var]:
    base = (
        analysis.simple_save_set_of(expr)
        if simple
        else analysis.save_set_of(expr)
    )
    if keep is None:
        return frozenset(base)
    return frozenset(v for v in base if keep(v))


def _wrap(vars: FrozenSet[Var], body: Expr, alloc: CodeAllocation) -> Expr:
    if not vars:
        return body
    ordered = sorted(vars, key=lambda v: v.uid)
    for var in ordered:
        alloc.home_for(var)
    return Save(ordered, body)


# ---------------------------------------------------------------------------
# Lazy placement (both revised and simple variants)
# ---------------------------------------------------------------------------


def _wrap_lazy(
    expr: Expr,
    analysis: SaveAnalysis,
    alloc: CodeAllocation,
    simple: bool,
    keep=None,
    scope: FrozenSet[Var] = frozenset(),
) -> Expr:
    """Recursively insert saves: at if-branches whose save requirements
    differ, and at let/fix bodies for the newly bound variables (a save
    may only mention variables bound at its insertion point)."""
    def recur(sub: Expr, sc: FrozenSet[Var]) -> Expr:
        return _wrap_lazy(sub, analysis, alloc, simple, keep, sc)

    def filtered(sub: Expr, sc: FrozenSet[Var]) -> FrozenSet[Var]:
        return _set_of(sub, analysis, simple, keep) & sc

    if isinstance(expr, (Quote, Ref, ClosureRef)):
        return expr
    if isinstance(expr, PrimCall):
        expr.args = [recur(a, scope) for a in expr.args]
        return expr
    if isinstance(expr, Seq):
        expr.exprs = [recur(e, scope) for e in expr.exprs]
        return expr
    if isinstance(expr, Let):
        expr.rhs = recur(expr.rhs, scope)
        inner_scope = scope | ({expr.var} if isinstance(expr.var.location, Register) else frozenset())
        need = filtered(expr.body, inner_scope) - filtered(expr.body, scope)
        expr.body = _wrap(need, recur(expr.body, inner_scope), alloc)
        return expr
    if isinstance(expr, If):
        then_set = filtered(expr.then, scope)
        else_set = filtered(expr.otherwise, scope)
        expr.test = recur(expr.test, scope)
        then_inner = recur(expr.then, scope)
        else_inner = recur(expr.otherwise, scope)
        if then_set != else_set:
            expr.then = _wrap(then_set, then_inner, alloc)
            expr.otherwise = _wrap(else_set, else_inner, alloc)
        else:
            # Equal requirements migrate to the enclosing save point.
            expr.then = then_inner
            expr.otherwise = else_inner
        return expr
    if isinstance(expr, Call):
        expr.fn = recur(expr.fn, scope)
        expr.args = [recur(a, scope) for a in expr.args]
        return expr
    if isinstance(expr, MakeClosure):
        expr.free_exprs = [recur(e, scope) for e in expr.free_exprs]
        return expr
    if isinstance(expr, Fix):
        bound = frozenset(
            v for v in expr.vars if isinstance(v.location, Register)
        )
        inner_scope = scope | bound
        expr.lambdas = [recur(c, inner_scope) for c in expr.lambdas]
        need = filtered(expr.body, inner_scope) - filtered(expr.body, scope)
        expr.body = _wrap(need, recur(expr.body, inner_scope), alloc)
        return expr
    raise CompilerError(f"save placement: unexpected node {type(expr).__name__}")


# ---------------------------------------------------------------------------
# Early placement
# ---------------------------------------------------------------------------


def _all_call_saves(expr: Expr, analysis: SaveAnalysis) -> FrozenSet[Var]:
    """Union of the save sets of every non-tail call in the body."""
    out: Set[Var] = set()
    for node in walk(expr):
        if isinstance(node, Call) and not node.tail:
            out |= analysis.call_save_set(node)
    return frozenset(out)


def _wrap_early(expr: Expr, analysis: SaveAnalysis, alloc: CodeAllocation) -> Expr:
    """Early placement below the entry: each let/fix-bound variable is
    saved immediately after binding if any call in the remaining scope
    wants it."""
    if isinstance(expr, (Quote, Ref, ClosureRef)):
        return expr
    if isinstance(expr, PrimCall):
        expr.args = [_wrap_early(a, analysis, alloc) for a in expr.args]
        return expr
    if isinstance(expr, Seq):
        expr.exprs = [_wrap_early(e, analysis, alloc) for e in expr.exprs]
        return expr
    if isinstance(expr, Let):
        expr.rhs = _wrap_early(expr.rhs, analysis, alloc)
        need = frozenset()
        if isinstance(expr.var.location, Register):
            need = _all_call_saves(expr.body, analysis) & {expr.var}
        expr.body = _wrap(need, _wrap_early(expr.body, analysis, alloc), alloc)
        return expr
    if isinstance(expr, If):
        expr.test = _wrap_early(expr.test, analysis, alloc)
        expr.then = _wrap_early(expr.then, analysis, alloc)
        expr.otherwise = _wrap_early(expr.otherwise, analysis, alloc)
        return expr
    if isinstance(expr, Call):
        expr.fn = _wrap_early(expr.fn, analysis, alloc)
        expr.args = [_wrap_early(a, analysis, alloc) for a in expr.args]
        return expr
    if isinstance(expr, MakeClosure):
        expr.free_exprs = [_wrap_early(e, analysis, alloc) for e in expr.free_exprs]
        return expr
    if isinstance(expr, Fix):
        bound = frozenset(v for v in expr.vars if isinstance(v.location, Register))
        expr.lambdas = [_wrap_early(c, analysis, alloc) for c in expr.lambdas]
        need = _all_call_saves(expr.body, analysis) & bound
        expr.body = _wrap(need, _wrap_early(expr.body, analysis, alloc), alloc)
        return expr
    raise CompilerError(
        f"early save placement: unexpected node {type(expr).__name__}"
    )


# ---------------------------------------------------------------------------
# Late placement
# ---------------------------------------------------------------------------


def _wrap_late(expr: Expr, analysis: SaveAnalysis, alloc: CodeAllocation) -> Expr:
    """Wrap every non-tail call with exactly its live-after registers."""
    if isinstance(expr, (Quote, Ref, ClosureRef)):
        return expr
    if isinstance(expr, PrimCall):
        expr.args = [_wrap_late(a, analysis, alloc) for a in expr.args]
        return expr
    if isinstance(expr, Seq):
        expr.exprs = [_wrap_late(e, analysis, alloc) for e in expr.exprs]
        return expr
    if isinstance(expr, Let):
        expr.rhs = _wrap_late(expr.rhs, analysis, alloc)
        expr.body = _wrap_late(expr.body, analysis, alloc)
        return expr
    if isinstance(expr, If):
        expr.test = _wrap_late(expr.test, analysis, alloc)
        expr.then = _wrap_late(expr.then, analysis, alloc)
        expr.otherwise = _wrap_late(expr.otherwise, analysis, alloc)
        return expr
    if isinstance(expr, Call):
        expr.fn = _wrap_late(expr.fn, analysis, alloc)
        expr.args = [_wrap_late(a, analysis, alloc) for a in expr.args]
        if expr.tail:
            return expr
        return _wrap(analysis.call_save_set(expr), expr, alloc)
    if isinstance(expr, MakeClosure):
        expr.free_exprs = [_wrap_late(e, analysis, alloc) for e in expr.free_exprs]
        return expr
    if isinstance(expr, Fix):
        expr.lambdas = [_wrap_late(c, analysis, alloc) for c in expr.lambdas]
        expr.body = _wrap_late(expr.body, analysis, alloc)
        return expr
    raise CompilerError(f"late save placement: unexpected node {type(expr).__name__}")


# ---------------------------------------------------------------------------
# Callee-save placement (§2.4)
# ---------------------------------------------------------------------------


def _place_callee(
    alloc: CodeAllocation, analysis: SaveAnalysis, config: CompilerConfig
) -> None:
    """Wrap callee regions.

    The caller-save machinery still applies to argument-register
    variables (they are caller-save in both conventions); the callee
    regions cover the ``t`` registers and ``ret``.
    """
    code = alloc.code
    strategy = config.save_strategy
    # Caller-save placement for the arg-register variables first (the
    # lazy algorithm; Table 5's variable is the *callee* strategy).
    def keep(v):
        return _caller_saved_in_callee_mode(v, alloc)

    scope = _entry_scope(alloc)
    body = _wrap_lazy(code.body, analysis, alloc, simple=False, keep=keep, scope=scope)
    top_callers = _set_of(code.body, analysis, simple=False, keep=keep) & scope
    body = _wrap(top_callers, body, alloc)

    if strategy in ("early",):
        regs = _callee_regs_used(code.body, alloc)
        if regs:
            code.body = Save([], body, callee_regs=regs)
        else:
            code.body = body
        return
    # Lazy callee placement: push regions into tail-position branches
    # where a call is inevitable.
    code.body = _wrap_callee_lazy(body, analysis, alloc)


def _caller_saved_in_callee_mode(var: Var, alloc: CodeAllocation) -> bool:
    """In callee mode only argument-register variables need caller
    saves; ``t`` registers and ``ret`` are covered by callee regions."""
    loc = var.location
    if not isinstance(loc, Register):
        return False
    if var is alloc.ret_var:
        return False
    # Argument registers and the closure pointer stay caller-save;
    # only the t registers and ret move to the callee regions.
    return not loc.callee_save


def _callee_regs_used(expr: Expr, alloc: CodeAllocation) -> List[Register]:
    """Callee-save registers written in *expr*, plus ``ret`` when the
    body can make a call (its prologue save is what Table 5's early
    strategy pays for)."""
    regs: Set[Register] = set()
    bound: Set[Var] = set()
    for node in walk(expr):
        if isinstance(node, Let):
            bound.add(node.var)
        elif isinstance(node, Fix):
            bound.update(node.vars)
    for var in bound:
        if isinstance(var.location, Register) and var.location.callee_save:
            regs.add(var.location)
    if contains_call(expr):
        regs.add(alloc.regfile.ret)
    return sorted(regs, key=lambda r: r.index)


def _wrap_callee_lazy(
    expr: Expr, analysis: SaveAnalysis, alloc: CodeAllocation
) -> Expr:
    """Wrap tail-position regions needing callee-save protection.

    A region is needed wherever a callee-save register is written — by
    a call (which clobbers ``ret``) or by binding a variable that lives
    in a ``t`` register.  Regions are pushed down through tail-position
    ``if``s whose tests are clean, so call-free, binding-free paths
    (the effective-leaf fast paths) never save at all.  Every covered
    write ends up inside a region; expressions with avoidable calls
    that are not ``if``s are wrapped conservatively — a documented
    over-approximation of the paper's §2.4 placement.
    """
    regs = _callee_regs_used(expr, alloc)
    if not regs:
        return expr
    if (
        isinstance(expr, If)
        and not analysis.always_calls(expr)
        and not _callee_regs_used(expr.test, alloc)
    ):
        expr.then = _wrap_callee_lazy(expr.then, analysis, alloc)
        expr.otherwise = _wrap_callee_lazy(expr.otherwise, analysis, alloc)
        return expr
    return Save([], expr, callee_regs=regs)
