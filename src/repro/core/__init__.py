"""The paper's contribution: lazy saves, eager restores, greedy shuffling.

Submodules:

* ``registers``     — the register file and register-set (bit vector) model
* ``liveness``      — variable-level liveness and location assignment (pass 0)
* ``savesets``      — the simple ``S[E]`` and revised ``St/Sf`` analyses (§2.1)
* ``saveplace``     — save placement: lazy / lazy-simple / early / late (pass 1)
* ``shuffle``       — greedy argument shuffling + comparison strategies (§2.3, §3.1)
* ``restoreplace``  — redundant-save elimination + eager restores (pass 2, §3.2)
* ``allocator``     — orchestration of the passes over a whole program
"""

from repro.core.registers import Register, RegisterFile
from repro.core.allocator import allocate_program

__all__ = ["Register", "RegisterFile", "allocate_program"]
