"""Greedy argument-register shuffling (§2.3, §3.1).

Setting up a call must move new argument values into the argument
registers while some of those values still depend on the *old* register
contents.  The shuffler chooses an evaluation order that minimizes (and
usually eliminates) temporaries:

1. Build the dependency graph over the register-targeted operands
   (operator included — it targets the closure-pointer register).
   Operand *i* must be evaluated before operand *j* whenever *i* reads
   *j*'s target register.
2. Partition operands into *simple* (no embedded call) and *complex*.
3. All but one complex operand are evaluated into stack temporaries
   ("making a call would cause the previous arguments to be saved on
   the stack anyway"); the chosen one — preferably one whose target
   register no simple operand reads — is evaluated directly into its
   register.
4. Place simple operands in dependency order.
5. On a cycle, greedily evict the operand participating in the most
   dependencies into a temporary (a free register when available,
   otherwise the stack) and continue.

Alternative strategies implemented for the paper's comparisons:

* ``naive``     — fixed left-to-right order, temporary whenever a later
  operand reads the current target.
* ``spill-all`` — Clinger/Hansen: any cycle spills *every* remaining
  operand to a temporary.
* ``optimal``   — exhaustive minimum feedback vertex set (the problem
  the paper notes is NP-complete); used for the §3.1 optimality
  statistics.
* ``permopt``   — Buchwald/Mohr/Rutter-style decomposition for an ISA
  with permutation instructions: the placement order is greedy's, but a
  *pure* cycle (every participant is a register-resident variable
  reference) is realized by one ``swap``/``permi`` rotation over the
  cycle's target registers — no temporary, no eviction.  Impure cycles
  (a participant computes a value or reads the closure pointer) fall
  back to greedy eviction.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.astnodes import (
    Call,
    Expr,
    Fix,
    Let,
    Ref,
    walk,
)
from repro.core.liveness import CodeAllocation, _referenced_vars
from repro.core.registers import Register
from repro.errors import CompilerError


class ShuffleItem:
    """One operand of a call being set up.

    ``index`` 0 is the operator; argument *k* has index *k+1*.
    ``target`` is a :class:`Register` for register-passed operands or an
    ``int`` outgoing stack slot.  ``reads`` is the set of registers the
    operand's expression reads *as sources* (old values).
    """

    __slots__ = ("index", "expr", "target", "is_complex", "reads")

    def __init__(
        self,
        index: int,
        expr: Expr,
        target,
        is_complex: bool,
        reads: FrozenSet[Register],
    ) -> None:
        self.index = index
        self.expr = expr
        self.target = target
        self.is_complex = is_complex
        self.reads = reads

    def __repr__(self) -> str:
        kind = "complex" if self.is_complex else "simple"
        return f"<item {self.index} -> {self.target} ({kind})>"


class ShufflePlan:
    """The ordered move/evaluation schedule for one call site.

    ``steps`` is a list of ``(kind, item)`` pairs consumed by the code
    generator, in execution order:

    * ``temp-stack-arg``   — complex stack-passed operand into a frame temp
    * ``temp-complex``     — complex register operand into a frame temp
    * ``direct-complex``   — the chosen complex operand straight to its register
    * ``stack-arg``        — simple stack-passed operand into its outgoing slot
    * ``flush-stack-temp`` — move a frame temp into its outgoing slot
    * ``direct``           — simple operand straight into its target register
    * ``evict``            — simple operand into a temporary (cycle break)
    * ``flush-evict``      — move an evicted temporary to its register
    * ``flush-complex-temp`` — move a complex frame temp to its register
    * ``permute``          — realize a pure cycle with one swap/permi
      rotation; the step's item is the *tuple* of cycle items in chain
      order (``permopt`` only)
    """

    __slots__ = (
        "items",
        "steps",
        "had_cycle",
        "evictions",
        "permutations",
        "free_temp_regs",
        "register_items",
    )

    def __init__(self) -> None:
        self.items: List[ShuffleItem] = []
        self.steps: List[Tuple[str, ShuffleItem]] = []
        self.had_cycle = False
        self.evictions = 0
        self.permutations = 0
        self.free_temp_regs: List[Register] = []
        self.register_items: List[ShuffleItem] = []


def contains_call(expr: Expr) -> bool:
    """True iff *expr* contains a non-tail call — the kind that
    clobbers the caller-save registers.  (Tail calls are jumps out of
    the frame and cannot occur inside an operand.)"""
    return any(
        isinstance(node, Call) and not node.tail for node in walk(expr)
    )


def build_items(call: Call, alloc: CodeAllocation) -> List[ShuffleItem]:
    """Operator + operands with their targets, reads and complexity."""
    regfile = alloc.regfile
    items: List[ShuffleItem] = []
    subs = [call.fn, *call.args]
    for index, expr in enumerate(subs):
        if index == 0:
            target = regfile.cp
        elif index - 1 < regfile.num_arg_regs:
            target = regfile.arg_regs[index - 1]
        else:
            target = index - 1 - regfile.num_arg_regs  # outgoing stack slot
        reads = _operand_reads(expr, alloc)
        items.append(ShuffleItem(index, expr, target, contains_call(expr), reads))
    return items


def _operand_reads(expr: Expr, alloc: CodeAllocation) -> FrozenSet[Register]:
    """Registers this operand conflicts with as a *source*: registers
    whose old values it reads (the ``cp`` pseudo-variable covers
    closure-slot access) plus registers it *writes* while evaluating
    (its internal ``let``/``fix`` bindings) — a write to another
    operand's target forces the same before/after ordering a read
    does."""
    regs: Set[Register] = set()
    for var in _referenced_vars(expr, alloc):
        if isinstance(var.location, Register):
            regs.add(var.location)
    for node in walk(expr):
        bound = []
        if isinstance(node, Let):
            bound = [node.var]
        elif isinstance(node, Fix):
            bound = node.vars
        for var in bound:
            if isinstance(var.location, Register):
                regs.add(var.location)
    return frozenset(regs)


# ---------------------------------------------------------------------------
# Dependency graph helpers
# ---------------------------------------------------------------------------


def dependency_edges(
    items: Sequence[ShuffleItem],
) -> Set[Tuple[int, int]]:
    """Edges ``(i, j)`` meaning item *i* must be evaluated before item
    *j* because *i* reads *j*'s target register.  Indices are positions
    in *items*."""
    edges: Set[Tuple[int, int]] = set()
    for i, a in enumerate(items):
        for j, b in enumerate(items):
            if i != j and isinstance(b.target, Register) and b.target in a.reads:
                edges.add((i, j))
    return edges


def minimum_evictions(n: int, edges: Set[Tuple[int, int]]) -> int:
    """Exact minimum feedback vertex set size by exhaustive search.

    This is the §3.1 "exhaustive search" comparator; call sites have at
    most ``c + 1`` register operands, so the search space is tiny."""
    if not _graph_cyclic(set(range(n)), edges):
        return 0
    nodes = list(range(n))
    for size in range(1, n + 1):
        for evicted in itertools.combinations(nodes, size):
            keep = set(nodes) - set(evicted)
            if not _graph_cyclic(keep, edges):
                return size
    return n


def _graph_cyclic(nodes: Set[int], edges: Set[Tuple[int, int]]) -> bool:
    remaining = set(nodes)
    changed = True
    while changed and remaining:
        changed = False
        for j in list(remaining):
            if not any(
                i != j and i in remaining and (i, j) in edges for i in remaining
            ):
                remaining.discard(j)
                changed = True
    return bool(remaining)


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------


def plan_shuffle(
    call: Call,
    alloc: CodeAllocation,
    strategy: str = "greedy",
) -> ShufflePlan:
    """Produce the evaluation schedule for one call site."""
    regfile = alloc.regfile
    items = build_items(call, alloc)
    plan = ShufflePlan()
    plan.items = items

    register_items = [it for it in items if isinstance(it.target, Register)]
    stack_items = [it for it in items if not isinstance(it.target, Register)]
    plan.register_items = register_items

    # -- complex operands -------------------------------------------------
    complex_stack = [it for it in stack_items if it.is_complex]
    simple_stack = [it for it in stack_items if not it.is_complex]
    complex_regs = [it for it in register_items if it.is_complex]
    simple_regs = [it for it in register_items if not it.is_complex]

    chosen: Optional[ShuffleItem] = None
    if complex_regs:
        if strategy in ("naive", "none"):
            # A fixed-order compiler sends every complex operand to a
            # temporary; no direct-into-register optimization.
            chosen = None
        else:
            # "We pick as the last complex argument one on which none
            # of the simple arguments depend" — writing its target
            # early must not destroy a register a simple operand still
            # reads (the old value's save is path-conditional inside
            # the complex operand, so it cannot be recovered from its
            # home).  ALL simple operands count: simple stack arguments
            # are evaluated after the direct placement too, and a stale
            # variable they reference reloads into — and so reads — the
            # target register.  With no safe candidate, every complex
            # operand goes through a stack temporary.
            for candidate in complex_regs:
                if not any(
                    candidate.target in s.reads
                    for s in (*simple_regs, *simple_stack)
                ):
                    chosen = candidate
                    break

    for it in complex_stack:
        plan.steps.append(("temp-stack-arg", it))
    for it in complex_regs:
        if it is not chosen:
            plan.steps.append(("temp-complex", it))
    if chosen is not None:
        plan.steps.append(("direct-complex", chosen))

    # Outgoing stack slots may only be written once no further call can
    # clobber the out-of-frame area.
    for it in simple_stack:
        plan.steps.append(("stack-arg", it))
    for it in complex_stack:
        plan.steps.append(("flush-stack-temp", it))

    # -- simple register operands -----------------------------------------
    _schedule_simple(plan, simple_regs, strategy)

    for it in complex_regs:
        if it is not chosen:
            plan.steps.append(("flush-complex-temp", it))

    if strategy == "none":
        # The pre-shuffling compiler spilled argument values to stack
        # temporaries; denying register temporaries reproduces its
        # per-argument stack traffic.
        plan.free_temp_regs = []
    else:
        plan.free_temp_regs = _free_registers(call, alloc, items)
    return plan


def _schedule_simple(
    plan: ShufflePlan, simple: List[ShuffleItem], strategy: str
) -> None:
    if strategy == "naive":
        _schedule_naive(plan, simple)
        return
    if strategy == "none":
        # No shuffling at all: every operand through a temporary.
        for it in simple:
            plan.steps.append(("evict", it))
            plan.evictions += 1
        for it in simple:
            plan.steps.append(("flush-evict", it))
        edges = dependency_edges(simple)
        plan.had_cycle = _graph_cyclic(set(range(len(simple))), edges)
        return
    if strategy == "optimal":
        _schedule_optimal(plan, simple)
        return
    if strategy == "permopt":
        _schedule_permopt(plan, simple)
        return
    _schedule_greedy(plan, simple, spill_all=(strategy == "spill-all"))


def _schedule_naive(plan: ShufflePlan, simple: List[ShuffleItem]) -> None:
    """Fixed left-to-right order; a temporary whenever a later operand
    still reads the current target."""
    evicted: List[ShuffleItem] = []
    for pos, it in enumerate(simple):
        later = simple[pos + 1 :]
        if any(it.target in other.reads for other in later):
            plan.steps.append(("evict", it))
            plan.evictions += 1
            evicted.append(it)
        else:
            plan.steps.append(("direct", it))
    for it in evicted:
        plan.steps.append(("flush-evict", it))
    edges = dependency_edges(simple)
    plan.had_cycle = _graph_cyclic(set(range(len(simple))), edges)


def _schedule_greedy(
    plan: ShufflePlan, simple: List[ShuffleItem], spill_all: bool
) -> None:
    edges = dependency_edges(simple)
    plan.had_cycle = _graph_cyclic(set(range(len(simple))), edges)
    remaining = list(range(len(simple)))
    evicted: List[ShuffleItem] = []
    while remaining:
        placed = None
        for j in remaining:
            # j can be placed (target overwritten) when no other
            # remaining operand still reads j's target.
            if not any(
                i != j and (i, j) in edges for i in remaining
            ):
                placed = j
                break
        if placed is not None:
            plan.steps.append(("direct", simple[placed]))
            remaining.remove(placed)
            continue
        # Cycle: greedily evict the operand causing the most
        # dependencies (§3.1 step 5) — or everything, for spill-all.
        if spill_all:
            for j in remaining:
                plan.steps.append(("evict", simple[j]))
                plan.evictions += 1
                evicted.append(simple[j])
            remaining.clear()
            break
        scores = {
            j: sum(
                1
                for i in remaining
                for pair in ((i, j), (j, i))
                if i != j and pair in edges
            )
            for j in remaining
        }
        victim = max(remaining, key=lambda j: (scores[j], -j))
        plan.steps.append(("evict", simple[victim]))
        plan.evictions += 1
        evicted.append(simple[victim])
        remaining.remove(victim)
    for it in evicted:
        plan.steps.append(("flush-evict", it))


def _is_pure_move(it: ShuffleItem) -> bool:
    """True when the operand's value *is* the current content of a
    register: a reference to a register-resident variable.  Only such
    operands can ride a permutation instruction — the permutation
    rearranges register contents, so the value must already live in a
    register on the cycle."""
    return isinstance(it.expr, Ref) and isinstance(
        it.expr.var.location, Register
    )


def _find_pure_cycle(
    simple: List[ShuffleItem], remaining: List[int]
) -> Optional[List[int]]:
    """A dependency cycle whose every participant is a pure register
    move, as indices in chain order: item *m* reads item *m+1*'s target
    (wrapping), so listing the targets in this order makes the cycle
    exactly one left-rotation.  ``None`` when no such cycle exists among
    *remaining* or when realizing one would destroy a register some
    other remaining operand still reads."""
    rem = set(remaining)
    target_owner = {
        simple[j].target: j
        for j in remaining
        if isinstance(simple[j].target, Register)
    }
    for start in remaining:
        seen: dict = {}
        chain: List[int] = []
        i = start
        while True:
            if i in seen:
                cycle = chain[seen[i]:]
                break
            it = simple[i]
            if not _is_pure_move(it):
                cycle = None
                break
            nxt = target_owner.get(it.expr.var.location)
            if nxt is None or nxt == i:
                cycle = None
                break
            seen[i] = len(chain)
            chain.append(i)
            i = nxt
        if not cycle or len(cycle) < 2:
            continue
        # The rotation clobbers every cycle target at once; any
        # remaining operand outside the cycle that still reads one
        # would lose its source, so the cycle is only safe when no
        # outsider depends on it.
        members = set(cycle)
        targets = {simple[j].target for j in cycle}
        if any(
            targets & simple[j].reads for j in rem if j not in members
        ):
            continue
        return cycle
    return None


def _schedule_permopt(plan: ShufflePlan, simple: List[ShuffleItem]) -> None:
    """Greedy placement order, but pure cycles become permutation
    instructions (Buchwald/Mohr/Rutter): acyclic call sites produce a
    schedule identical to greedy's, and a cycle of register-resident
    variables costs one ``swap``/``permi`` instead of an eviction's
    temporary traffic.  Impure cycles fall back to greedy eviction."""
    edges = dependency_edges(simple)
    plan.had_cycle = _graph_cyclic(set(range(len(simple))), edges)
    remaining = list(range(len(simple)))
    evicted: List[ShuffleItem] = []
    while remaining:
        placed = None
        for j in remaining:
            if not any(
                i != j and (i, j) in edges for i in remaining
            ):
                placed = j
                break
        if placed is not None:
            plan.steps.append(("direct", simple[placed]))
            remaining.remove(placed)
            continue
        cycle = _find_pure_cycle(simple, remaining)
        if cycle is not None:
            plan.steps.append(
                ("permute", tuple(simple[j] for j in cycle))
            )
            plan.permutations += 1
            for j in cycle:
                remaining.remove(j)
            continue
        # Impure cycle: greedy's eviction, identical victim choice.
        scores = {
            j: sum(
                1
                for i in remaining
                for pair in ((i, j), (j, i))
                if i != j and pair in edges
            )
            for j in remaining
        }
        victim = max(remaining, key=lambda j: (scores[j], -j))
        plan.steps.append(("evict", simple[victim]))
        plan.evictions += 1
        evicted.append(simple[victim])
        remaining.remove(victim)
    for it in evicted:
        plan.steps.append(("flush-evict", it))


def _schedule_optimal(plan: ShufflePlan, simple: List[ShuffleItem]) -> None:
    """Exhaustively find a minimum set of evictions, then place the
    rest in dependency order."""
    edges = dependency_edges(simple)
    n = len(simple)
    plan.had_cycle = _graph_cyclic(set(range(n)), edges)
    best: Optional[Tuple[int, ...]] = None
    if not plan.had_cycle:
        best = ()
    else:
        for size in range(1, n + 1):
            for combo in itertools.combinations(range(n), size):
                if not _graph_cyclic(set(range(n)) - set(combo), edges):
                    best = combo
                    break
            if best is not None:
                break
    assert best is not None
    evicted_idx = set(best)
    evicted: List[ShuffleItem] = []
    for j in sorted(evicted_idx):
        plan.steps.append(("evict", simple[j]))
        plan.evictions += 1
        evicted.append(simple[j])
    remaining = [j for j in range(n) if j not in evicted_idx]
    while remaining:
        for j in remaining:
            if not any(
                i != j and (i, j) in edges for i in remaining
            ):
                plan.steps.append(("direct", simple[j]))
                remaining.remove(j)
                break
        else:  # pragma: no cover - eviction set guarantees progress
            raise CompilerError("optimal shuffle failed to make progress")
    for it in evicted:
        plan.steps.append(("flush-evict", it))


def _free_registers(
    call: Call, alloc: CodeAllocation, items: List[ShuffleItem]
) -> List[Register]:
    """Registers usable as shuffle temporaries: not a target of this
    call, not holding any variable still live, not read or written by
    any operand (an operand's internal bindings write registers too),
    and not a special register other than ``rv``."""
    regfile = alloc.regfile
    excluded: Set[Register] = {
        it.target for it in items if isinstance(it.target, Register)
    }
    for it in items:
        excluded |= it.reads
    for var in (call.live_before or frozenset()) | (call.live_after or frozenset()):
        if isinstance(var.location, Register):
            excluded.add(var.location)
    free: List[Register] = []
    # rv is reserved as the code generator's produce-then-consume
    # conduit and must never hold an eviction across other steps.
    # Callee-save registers are never free even when no local variable
    # lives there: the callee convention promises the *caller's* value
    # survives, and no callee region protects a shuffle temporary.
    for reg in (*regfile.arg_regs, *regfile.temp_regs):
        if reg not in excluded and not reg.callee_save:
            free.append(reg)
    return free
