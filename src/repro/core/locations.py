"""Run-time locations for variables, and per-procedure frame layout.

The paper's run-time model (§1, §3) gives every variable a *home*: a
register (``a``/``t`` from :mod:`repro.core.registers`) or a stack
frame slot.  This module supplies the stack half — :class:`FrameSlot`
values and the :class:`FrameLayout` allocator that hands them out —
and the :data:`Location` union that the allocation passes traffic in.

Frames grow upward from ``sp``.  Incoming stack-passed arguments
occupy the base (the caller wrote them past its own frame, §3.1's
calling convention); spill homes, save homes (the targets of the lazy
``save`` forms of §2.1), and shuffle temporaries (§2.3) follow in
allocation order.  Each slot records its *purpose*, which is how stack
references acquire the ``save``/``restore``/``spill``/``arg``/``temp``
kinds that the VM counts for the paper's Table 3.
"""

from __future__ import annotations

from typing import List, Union

from repro.core.registers import Register


class FrameSlot:
    """A stack-frame slot (index relative to the frame base)."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __repr__(self) -> str:
        return f"fv{self.index}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FrameSlot) and other.index == self.index

    def __hash__(self) -> int:
        return hash(("FrameSlot", self.index))


Location = Union[Register, FrameSlot]


class FrameLayout:
    """Allocates the frame slots of one procedure.

    Layout, from the frame base:

    * slots ``0 .. n-1``     — incoming stack-passed arguments
    * everything after       — in allocation order: spilled variables,
      register save homes (one per saved variable, incl. ``ret``),
      shuffle/complex-argument temporaries, and scratch slots

    Outgoing stack arguments of non-tail calls are written past the
    frame (at ``sp + frame_size + i``), becoming the callee's incoming
    slots after ``sp`` is advanced.
    """

    def __init__(self, incoming_stack_args: int) -> None:
        self.incoming_stack_args = incoming_stack_args
        self._next = incoming_stack_args
        self.purposes: List[str] = ["incoming-arg"] * incoming_stack_args

    def alloc(self, purpose: str) -> FrameSlot:
        slot = FrameSlot(self._next)
        self._next += 1
        self.purposes.append(purpose)
        return slot

    @property
    def size(self) -> int:
        return self._next

    def __repr__(self) -> str:
        return f"<FrameLayout {self.size} slots>"
