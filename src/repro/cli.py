"""Command-line interface.

    python -m repro run program.scm --save-strategy late
    python -m repro run program.scm --json
    python -m repro trace program.scm --out trace.json
    python -m repro disasm program.scm --proc tak
    python -m repro expand program.scm
    python -m repro bench tak deriv --baseline
    python -m repro bench tak --allocator all
    python -m repro bench tak --shuffle all
    python -m repro alloc program.scm --compare
    python -m repro table 3
    python -m repro table shuffle-study
    python -m repro list

Every subcommand accepts the configuration flags, so any point in the
paper's design space can be explored from the shell.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.astnodes import pretty
from repro.backend.isa import format_code
from repro.config import (
    ALLOCATOR_STRATEGIES,
    BRANCH_PREDICTION_MODES,
    CompilerConfig,
    ObserveConfig,
    RESTORE_STRATEGIES,
    SAVE_CONVENTIONS,
    SAVE_STRATEGIES,
    SHUFFLE_STRATEGIES,
)
from repro.errors import CompilerError, FuzzError, ServeError
from repro.observe import Tracer, chrome_trace, metrics_dict, text_profile
from repro.pipeline import compile_source, expand_source, run_compiled
from repro.runtime.values import SchemeError
from repro.sexp.reader import ReaderError
from repro.sexp.writer import write_datum
from repro.vm.machine import VMError


def _add_config_flags(
    parser: argparse.ArgumentParser,
    allocator_all: bool = False,
    shuffle_all: bool = False,
) -> None:
    group = parser.add_argument_group("allocator configuration")
    allocator_choices = list(ALLOCATOR_STRATEGIES)
    if allocator_all:
        allocator_choices.append("all")
    group.add_argument(
        "--allocator",
        choices=allocator_choices,
        default="lazy",
        help="binding-assignment strategy"
        + (" ('all' sweeps every strategy)" if allocator_all else ""),
    )
    group.add_argument(
        "--save-strategy", choices=SAVE_STRATEGIES, default="lazy"
    )
    group.add_argument(
        "--restore-strategy", choices=RESTORE_STRATEGIES, default="eager"
    )
    shuffle_choices = list(SHUFFLE_STRATEGIES)
    if shuffle_all:
        shuffle_choices.append("all")
    group.add_argument(
        "--shuffle",
        choices=shuffle_choices,
        default="greedy",
        help="argument-shuffle codegen strategy"
        + (" ('all' sweeps every strategy)" if shuffle_all else ""),
    )
    group.add_argument(
        "--convention", choices=SAVE_CONVENTIONS, default="caller"
    )
    group.add_argument("--arg-regs", type=int, default=6, metavar="N")
    group.add_argument("--temp-regs", type=int, default=6, metavar="N")
    group.add_argument(
        "--baseline",
        action="store_true",
        help="shorthand for --arg-regs 0 --temp-regs 0",
    )
    group.add_argument(
        "--lift", action="store_true", help="enable lambda lifting (§6)"
    )
    group.add_argument(
        "--predict",
        choices=[m for m in BRANCH_PREDICTION_MODES if m],
        default=None,
        help="branch prediction cost modelling",
    )
    group.add_argument("--no-prelude", action="store_true")
    group.add_argument(
        "--vm-debug", action="store_true", help="poison-checking VM mode"
    )
    group.add_argument(
        "--no-vm-fast",
        action="store_true",
        help="use the legacy dispatch loop instead of the trace-compiled fast path",
    )


def _add_observe_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("telemetry")
    group.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="metrics snapshot path (default: $REPRO_METRICS_PATH or "
        "~/.cache/repro/metrics.json)",
    )
    group.add_argument(
        "--no-metrics",
        action="store_true",
        help="do not write a metrics snapshot",
    )
    group.add_argument(
        "--flight-dir",
        metavar="DIR",
        default=ObserveConfig.from_env().flight_dir,
        help="where flight-recorder crash dumps go "
        "(default: $REPRO_FLIGHT_DIR, else disabled)",
    )
    group.add_argument(
        "--trace-dir",
        metavar="DIR",
        default=ObserveConfig.from_env().trace_dir,
        help="request-trace span store directory "
        "(default: $REPRO_TRACE_DIR, else tracing disabled)",
    )
    group.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="RATE",
        help="tail-sampling keep rate for ok traces in [0,1] "
        "(errors and the slowest requests are always kept; default 1.0)",
    )


def _config_from(args: argparse.Namespace) -> CompilerConfig:
    arg_regs = 0 if args.baseline else args.arg_regs
    temp_regs = 0 if args.baseline else args.temp_regs
    allocator = getattr(args, "allocator", "lazy")
    if allocator == "all":  # sweeping callers expand it themselves
        allocator = "lazy"
    shuffle = getattr(args, "shuffle", "greedy")
    if shuffle == "all":  # sweeping callers expand it themselves
        shuffle = "greedy"
    return CompilerConfig(
        allocator=allocator,
        num_arg_regs=arg_regs,
        num_temp_regs=temp_regs,
        save_strategy=args.save_strategy,
        restore_strategy=args.restore_strategy,
        shuffle_strategy=shuffle,
        save_convention=args.convention,
        branch_prediction=args.predict,
        lambda_lift=args.lift,
        vm_fast=not args.no_vm_fast,
    )


def _read_program(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------


def _write_out(path: Optional[str], payload: str) -> None:
    """Write *payload* to *path*, or stdout when path is None/'-'."""
    if path is None or path == "-":
        sys.stdout.write(payload)
        if not payload.endswith("\n"):
            sys.stdout.write("\n")
    else:
        with open(path, "w") as handle:
            handle.write(payload)


def cmd_run(args: argparse.Namespace) -> int:
    source = _read_program(args.file)
    config = _config_from(args)
    tracing = bool(args.trace or args.json)
    tracer = Tracer() if tracing else None
    compiled = compile_source(
        source, config, prelude=not args.no_prelude, tracer=tracer
    )
    result = run_compiled(
        compiled, debug=args.vm_debug, tracer=tracer, profile=tracing
    )
    if args.trace:
        _write_out(
            args.trace,
            json.dumps(
                chrome_trace(tracer, counters=result.counters, profile=result.profile)
            ),
        )
    if args.json:
        doc = metrics_dict(
            counters=result.counters,
            tracer=tracer,
            profile=result.profile,
            value=write_datum(result.value),
            output=result.output,
        )
        print(json.dumps(doc, indent=2))
        return 0
    if result.output:
        sys.stdout.write(result.output)
        if not result.output.endswith("\n"):
            sys.stdout.write("\n")
    print(write_datum(result.value))
    if args.counters:
        c = result.counters
        print(f"; instructions {c.instructions}", file=sys.stderr)
        print(f"; cycles       {c.cycles}", file=sys.stderr)
        print(f"; stack refs   {c.total_stack_refs}", file=sys.stderr)
        print(f"; saves        {c.saves}", file=sys.stderr)
        print(f"; restores     {c.restores}", file=sys.stderr)
        print(f"; calls        {c.calls} (+{c.tail_calls} tail)", file=sys.stderr)
        f = result.classifier.effective_leaf_fraction
        print(f"; eff. leaves  {f:.1%}", file=sys.stderr)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    source = _read_program(args.file)
    config = _config_from(args).with_(trace="all")
    tracer = Tracer()
    compiled = compile_source(
        source, config, prelude=not args.no_prelude, tracer=tracer
    )
    result = run_compiled(
        compiled, debug=args.vm_debug, tracer=tracer, profile=True
    )
    profile = result.profile if (args.profile or args.format != "chrome") else None
    if args.format == "chrome":
        payload = json.dumps(
            chrome_trace(
                tracer,
                counters=result.counters,
                profile=result.profile if args.profile else None,
            )
        )
    elif args.format == "json":
        payload = json.dumps(
            metrics_dict(
                counters=result.counters,
                tracer=tracer,
                profile=profile,
                value=write_datum(result.value),
                output=result.output,
            ),
            indent=2,
        )
    else:
        payload = text_profile(
            counters=result.counters, tracer=tracer, profile=profile
        )
    _write_out(args.out, payload)
    print(f"; value {write_datum(result.value)}", file=sys.stderr)
    if args.out and args.out != "-":
        print(f"; trace written to {args.out}", file=sys.stderr)
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    source = _read_program(args.file)
    config = _config_from(args)
    compiled = compile_source(source, config, prelude=not args.no_prelude)
    names = [r.name for r in compiled.regfile.all]
    for code in compiled.codes:
        if args.proc and code.name != args.proc:
            continue
        print(format_code(code, names))
        print()
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.report import allocation_report

    source = _read_program(args.file)
    config = _config_from(args)
    compiled = compile_source(source, config, prelude=not args.no_prelude)
    print(allocation_report(compiled, proc=args.proc))
    return 0


def cmd_expand(args: argparse.Namespace) -> int:
    source = _read_program(args.file)
    expr = expand_source(source, prelude=not args.no_prelude)
    print(pretty(expr))
    return 0


def cmd_alloc(args: argparse.Namespace) -> int:
    """Inspect register allocation: a static summary for the selected
    strategy, or (``--compare``) an ablation table running the same
    program under every registered strategy."""
    source = _read_program(args.file)
    config = _config_from(args)
    if not args.compare:
        compiled = compile_source(source, config, prelude=not args.no_prelude)
        alloc = compiled.allocation
        stats = alloc.stats
        print(f"allocator    {config.allocator}")
        print(f"procedures   {len(compiled.codes)}")
        print(f"candidates   {stats.candidates}")
        print(f"registered   {stats.assigned}")
        print(f"spilled      {stats.spilled}")
        for phase in sorted(alloc.pass_times):
            print(f"pass {phase:17s} {alloc.pass_times[phase] * 1e3:8.2f} ms")
        return 0

    rows = []
    for allocator in ALLOCATOR_STRATEGIES:
        cfg = config.with_(allocator=allocator)
        compiled = compile_source(source, cfg, prelude=not args.no_prelude)
        result = run_compiled(compiled, debug=args.vm_debug)
        c = result.counters
        rows.append(
            {
                "allocator": allocator,
                "value": write_datum(result.value),
                "saves": c.saves,
                "restores": c.restores,
                "moves": c.moves,
                "swaps": c.swaps,
                "spill-refs": c.stack_reads.get("spill", 0)
                + c.stack_writes.get("spill", 0),
                "spilled-vars": compiled.allocation.stats.spilled,
                "stack-refs": c.total_stack_refs,
                "cycles": c.cycles,
            }
        )
    if args.json:
        print(json.dumps(rows, indent=2))
    else:
        header = (
            f"{'allocator':11s} {'saves':>9s} {'restores':>9s} {'moves':>9s} "
            f"{'swaps':>7s} "
            f"{'spill-refs':>10s} {'spilled':>8s} {'stack-refs':>10s} "
            f"{'cycles':>11s}"
        )
        print(header)
        print("-" * len(header))
        for row in rows:
            print(
                f"{row['allocator']:11s} {row['saves']:>9,} "
                f"{row['restores']:>9,} {row['moves']:>9,} "
                f"{row['swaps']:>7,} "
                f"{row['spill-refs']:>10,} {row['spilled-vars']:>8,} "
                f"{row['stack-refs']:>10,} {row['cycles']:>11,}"
            )
        print(f"value: {rows[0]['value']}")
    if len({row["value"] for row in rows}) > 1:
        print("error: allocator strategies disagree on the program value",
              file=sys.stderr)
        return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.benchsuite import BENCHMARKS
    from repro.benchsuite.runner import run_benchmark

    if args.baseline_out or args.check_baseline:
        return _bench_baseline(args)
    if args.warm_start:
        return _bench_warm_start(args)

    names = args.names or sorted(BENCHMARKS)
    config = _config_from(args)
    sweep = getattr(args, "allocator", "lazy") == "all"
    shuffle_sweep = getattr(args, "shuffle", "greedy") == "all"
    allocators = ALLOCATOR_STRATEGIES if sweep else (config.allocator,)
    shuffles = (
        SHUFFLE_STRATEGIES if shuffle_sweep else (config.shuffle_strategy,)
    )
    tracer = Tracer() if args.trace else None
    rows = []
    alloc_col = f"{'allocator':>11s} " if sweep else ""
    shuffle_col = f"{'shuffle':>9s} " if shuffle_sweep else ""
    move_cols = f"{'moves':>10s} {'swaps':>8s} " if shuffle_sweep else ""
    header = (
        f"{'benchmark':16s} {alloc_col}{shuffle_col}{'value':>12s} "
        f"{'instrs':>11s} "
        f"{'cycles':>11s} {move_cols}{'stack refs':>11s} {'eff-leaf':>9s}"
    )
    if not args.json:
        print(header)
        print("-" * len(header))
    for name in names:
        if name not in BENCHMARKS:
            print(f"unknown benchmark {name!r}", file=sys.stderr)
            return 1
        points = [(a, s) for a in allocators for s in shuffles]
        for allocator, shuffle in points:
            run_config = config.with_(
                allocator=allocator, shuffle_strategy=shuffle
            )
            span = tracer.span("bench", benchmark=name) if tracer else None
            if span:
                with span:
                    run = run_benchmark(
                        name, run_config, debug=args.vm_debug, tracer=tracer
                    )
            else:
                run = run_benchmark(name, run_config, debug=args.vm_debug)
            c = run.counters
            if args.json:
                row = {
                    "benchmark": name,
                    "value": run.value_text,
                    "effective_leaf_fraction": (
                        run.classifier.effective_leaf_fraction
                    ),
                    "counters": c.as_dict(),
                }
                if sweep:
                    row["allocator"] = allocator
                if shuffle_sweep:
                    row["shuffle"] = shuffle
                rows.append(row)
            else:
                alloc_cell = f"{allocator:>11s} " if sweep else ""
                shuffle_cell = f"{shuffle:>9s} " if shuffle_sweep else ""
                move_cells = (
                    f"{c.moves:>10,} {c.swaps:>8,} " if shuffle_sweep else ""
                )
                print(
                    f"{name:16s} {alloc_cell}{shuffle_cell}"
                    f"{run.value_text[:12]:>12s} "
                    f"{c.instructions:>11,} "
                    f"{c.cycles:>11,} {move_cells}{c.total_stack_refs:>11,} "
                    f"{run.classifier.effective_leaf_fraction:>9.1%}"
                )
    if args.json:
        print(json.dumps(rows, indent=2))
    if tracer is not None:
        _write_out(args.trace, json.dumps(chrome_trace(tracer)))
        print(f"; trace written to {args.trace}", file=sys.stderr)
    if args.history:
        record = {
            "kind": "bench",
            "benchmarks": names,
            "config": config.summary(),
        }
        if rows:
            record["rows"] = rows
        _append_history(args.history, record)
        print(f"; history appended to {args.history}", file=sys.stderr)
    return 0


def _append_history(path: str, record: dict) -> None:
    """Append one timestamped JSON record (one line) to a history file —
    the longitudinal record ``repro bench --history`` accumulates."""
    from repro import __version__

    record = {
        "ts": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "unix_s": round(time.time(), 3),
        "version": __version__,
        **record,
    }
    with open(path, "a") as handle:
        handle.write(json.dumps(record) + "\n")


def _bench_baseline(args: argparse.Namespace) -> int:
    """The ``bench --baseline-out`` / ``--check-baseline`` modes: VM
    throughput baseline collection and the CI regression gate."""
    from repro.benchsuite import vmbench

    def progress(name: str, entry) -> None:
        speed = (
            f"  {entry['instructions_per_sec'] / 1e6:5.2f} M instr/s"
            f"  ({entry['speedup_vs_legacy']:.2f}x vs legacy)"
            if "speedup_vs_legacy" in entry
            else ""
        )
        print(f"; {name:16s} {entry['instructions']:>11,} instr{speed}", file=sys.stderr)

    doc = vmbench.collect_baseline(
        names=args.names or None,
        config=_config_from(args),
        repeats=args.repeats,
        progress=progress,
    )
    if args.warm_start:
        doc["warm_start"] = vmbench.collect_warm_start(
            config=_config_from(args), repeats=args.repeats
        )
        totals = doc["warm_start"]["totals"]
        print(
            f"; warm start (corpus total): cold {totals['cold_s']}s, "
            f"isa {totals['isa_ready_s']}s, "
            f"artifact {totals['artifact_ready_s']}s, "
            f"aot import {totals['aot_import_s']}s",
            file=sys.stderr,
        )
    if "geomean_speedup" in doc:
        print(f"; geomean speedup {doc['geomean_speedup']:.2f}x", file=sys.stderr)
    if args.baseline_out:
        vmbench.write_baseline(doc, args.baseline_out)
        print(f"; baseline written to {args.baseline_out}", file=sys.stderr)
        if not args.check_baseline:
            return 0
    baseline = vmbench.load_baseline(args.check_baseline)
    problems = vmbench.compare_baseline(doc, baseline, tolerance=args.tolerance)
    if problems:
        for problem in problems:
            print(f"bench regression: {problem}", file=sys.stderr)
        return 1
    print(
        f"; baseline check passed against {args.check_baseline}", file=sys.stderr
    )
    return 0


def _bench_warm_start(args: argparse.Namespace) -> int:
    """``bench --warm-start`` without a baseline file: measure and print
    the cold / ISA-cache / artifact-cache / AOT-import table."""
    from repro.benchsuite import vmbench

    doc = vmbench.collect_warm_start(
        names=args.names or None,
        config=_config_from(args),
        repeats=args.repeats,
    )
    if args.json:
        print(json.dumps(doc, indent=2))
        return 0
    header = (
        f"{'benchmark':16s} {'cold':>9s} {'isa':>9s} "
        f"{'artifact':>9s} {'aot-import':>11s}"
    )
    print(header)
    print("-" * len(header))
    rows = list(doc["benchmarks"].items()) + [("total", doc["totals"])]
    for name, entry in rows:
        print(
            f"{name:16s} {entry['cold_s'] * 1e3:>7.1f}ms "
            f"{entry['isa_ready_s'] * 1e3:>7.1f}ms "
            f"{entry['artifact_ready_s'] * 1e3:>7.1f}ms "
            f"{entry['aot_import_s'] * 1e3:>9.1f}ms"
        )
    return 0


def cmd_isa(args: argparse.Namespace) -> int:
    from repro.backend.isa import isa_markdown

    if args.markdown:
        _write_out(args.out, isa_markdown())
        return 0
    from repro.backend.isa import ISA_SPEC

    for entry in ISA_SPEC:
        print(f"{entry['op']:10s} {entry['operands']:28s} {entry['effect']}")
    return 0


def cmd_table(args: argparse.Namespace) -> int:
    from repro.benchsuite import tables

    which = args.which
    names = args.names or None
    if which == "2":
        print(tables.format_table2(tables.table2(names)))
    elif which == "3":
        print(tables.format_table3(tables.table3(names)))
    elif which == "4":
        print(tables.format_table45(tables.table4(), "speedup-vs-cc"))
    elif which == "5":
        print(tables.format_table45(tables.table5(), "speedup-vs-early"))
    elif which == "shuffle":
        for key, value in tables.shuffle_stats(names).items():
            print(f"{key:26s} {value}")
    elif which == "shuffle-study":
        rows = tables.shuffle_study(names)
        if args.check:
            table_md = tables.markdown_shuffle_study(rows)
            with open(args.check) as handle:
                doc = handle.read()
            if table_md not in doc:
                print(
                    f"repro: table: shuffle-study table in {args.check} is "
                    "stale; regenerate with "
                    "'repro table shuffle-study --markdown' and paste it "
                    "between the markers",
                    file=sys.stderr,
                )
                return 1
            print(f"; shuffle-study table in {args.check} is current")
        elif args.markdown:
            print(tables.markdown_shuffle_study(rows))
        else:
            print(tables.format_shuffle_study(rows))
    elif which == "sweep":
        rows = tables.register_sweep(names or tables.FAST_NAMES)
        print(tables.format_register_sweep(rows))
    elif which == "restores":
        for r in tables.restore_comparison(names or tables.FAST_NAMES):
            print(
                f"latency={r['latency']} {r['strategy']:5s} "
                f"cycles={r['cycles']:,} restores={r['restores']:,}"
            )
    else:  # pragma: no cover - argparse restricts choices
        return 1
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import load_entry, run_fuzz
    from repro.fuzz.engine import replay_entry

    if args.replay:
        entry = load_entry(args.replay)
        report = replay_entry(entry, shrink=args.shrink)
    else:
        def progress(done: int, partial) -> None:
            if not args.json and done % 25 == 0:
                print(
                    f"; {done} programs checked, "
                    f"{len(partial.failures)} failure(s), "
                    f"{partial.configs_checked} config runs",
                    file=sys.stderr,
                )

        report = run_fuzz(
            seed=args.seed,
            iterations=args.iterations,
            time_budget=args.time_budget,
            jobs=args.jobs,
            shrink=args.shrink,
            corpus_dir=args.corpus,
            keep_interesting=args.keep_interesting,
            on_progress=progress,
            flight_dir=args.corpus,
            allocator=args.allocator,
            shuffle=args.shuffle,
        )

    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(
            f"fuzz: {report.iterations} program(s), "
            f"{report.configs_checked} config runs, "
            f"{report.invalid} invalid, "
            f"{report.shuffle_cycles} shuffle cycles, "
            f"{len(report.failures)} failure(s) "
            f"in {report.elapsed:.1f}s"
        )
        for failure in report.failures:
            print(f"--- failure at iteration {failure.iteration}")
            for div in failure.divergences[:5]:
                cfg = div.get("config", {})
                print(
                    f"    {div['kind']}: expected {div['expected']!r}, "
                    f"got {div['got']!r} "
                    f"[save={cfg.get('save_strategy')} "
                    f"restore={cfg.get('restore_strategy')} "
                    f"shuffle={cfg.get('shuffle_strategy')} "
                    f"conv={cfg.get('save_convention')} "
                    f"c={cfg.get('num_arg_regs')} "
                    f"alloc={cfg.get('allocator', 'lazy')}]"
                )
            if len(failure.divergences) > 5:
                print(f"    ... and {len(failure.divergences) - 5} more")
            if failure.shrunk is not None:
                print(f"    shrunk to {failure.shrunk_size} node(s):")
                for line in failure.shrunk.splitlines():
                    print(f"      {line}")
            if failure.corpus_path:
                print(f"    saved: {failure.corpus_path}")
            if failure.flight_path:
                print(f"    flight recording: {failure.flight_path}")
    return 0 if report.ok else 1


def _batch_requests(args: argparse.Namespace) -> list:
    """Build the request list for ``repro batch``: either every
    benchsuite program (``--bench``) or a JSON-lines request file."""
    from repro.serve.service import Request

    config = _config_from(args)
    if args.bench:
        from repro.benchsuite import BENCHMARKS

        names = args.input or sorted(BENCHMARKS)
        requests = []
        for name in names:
            if name not in BENCHMARKS:
                raise ServeError(f"unknown benchmark {name!r}")
            requests.append(
                Request(
                    op="run" if args.run else "compile",
                    source=BENCHMARKS[name].source,
                    config=config,
                    id=name,
                    max_instructions=args.max_instructions,
                    timeout=args.timeout,
                )
            )
        return requests
    if not args.input:
        raise ServeError("batch: give a request file (or - for stdin), or --bench")
    path = args.input[0]
    handle = sys.stdin if path == "-" else open(path)
    requests = []
    try:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                doc = json.loads(line)
                request = Request.from_dict(doc)
            except (ValueError, KeyError, TypeError) as exc:
                raise ServeError(f"batch: bad request on line {lineno}: {exc}")
            if request.id is None:
                request.id = lineno
            if request.config is None:
                request.config = config
            if request.timeout is None:
                request.timeout = args.timeout
            if request.max_instructions is None:
                request.max_instructions = args.max_instructions
            requests.append(request)
    finally:
        if handle is not sys.stdin:
            handle.close()
    return requests


def _metrics_out_path(args: argparse.Namespace) -> Optional[str]:
    """Where the registry snapshot goes: ``--metrics-out`` wins, then the
    environment/default path, and ``--no-metrics`` turns it off."""
    if args.no_metrics:
        return None
    return args.metrics_out or ObserveConfig.from_env().metrics_path


def cmd_batch(args: argparse.Namespace) -> int:
    from repro.serve.service import BatchService, summarize

    requests = _batch_requests(args)
    tracer = Tracer() if args.trace else None
    # One batch = one metrics lifetime: the snapshot written below covers
    # exactly this run (matters for in-process main() reuse too).
    from repro.observe.metrics import get_registry

    get_registry().clear()
    from repro.observe.reqtrace import build_reqtracer

    reqtracer = build_reqtracer(
        args.trace_dir,
        sample=args.trace_sample,
        registry=get_registry(),
        service="batch",
    )
    service = BatchService(
        jobs=args.jobs,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
        disk_cache=not args.memory_cache,
        artifacts=not args.no_artifacts,
        tracer=tracer,
        flight_dir=args.flight_dir,
        reqtracer=reqtracer,
    )

    def progress(response) -> None:
        if args.json:
            return
        print(json.dumps(response.as_dict()))

    responses = service.run(requests, on_response=progress)
    summary = summarize(responses)
    summary["jobs"] = args.jobs
    if args.json:
        doc = {
            "summary": summary,
            "stats": service.stats(),
            "responses": [r.as_dict() for r in responses],
        }
        print(json.dumps(doc, indent=2))
    else:
        print(
            f"; batch: {summary['requests']} request(s), {summary['ok']} ok, "
            f"{summary['cache_hits']} cache hit(s), "
            f"{summary['cache_misses']} miss(es)",
            file=sys.stderr,
        )
        for kind, count in sorted(summary["errors"].items()):
            print(f";   {kind}: {count}", file=sys.stderr)
    if tracer is not None:
        _write_out(
            args.trace,
            json.dumps(chrome_trace(tracer, workers=service.worker_spans)),
        )
        print(f"; trace written to {args.trace}", file=sys.stderr)
    metrics_out = _metrics_out_path(args)
    if metrics_out:
        service.write_metrics(metrics_out)
        if not args.json:
            print(f"; metrics written to {metrics_out}", file=sys.stderr)
    for path in service.flight_dumps:
        print(f"; flight recording: {path}", file=sys.stderr)
    return 0 if summary["ok"] == summary["requests"] else 1


def cmd_serve(args: argparse.Namespace) -> int:
    if args.stdio and args.tcp:
        print("repro: serve: pick one of --stdio / --tcp", file=sys.stderr)
        return 2
    if args.tcp:
        from repro.config import ServeConfig
        from repro.serve.net import serve_tcp

        try:
            host, port = ServeConfig.parse_address(args.tcp)
            serve_config = ServeConfig(
                host=host,
                port=port,
                max_clients=args.max_clients,
                max_pending_per_tenant=args.max_pending_per_tenant,
                max_pending_total=args.max_pending,
                drain_grace_s=args.drain_grace,
                dedup=not args.no_dedup,
                cache_shards=args.cache_shards,
            )
        except ValueError as exc:
            print(f"repro: serve: {exc}", file=sys.stderr)
            return 2
        return serve_tcp(
            host=host,
            port=port,
            jobs=args.jobs,
            cache=not args.no_cache,
            cache_dir=args.cache_dir,
            disk_cache=not args.memory_cache,
            artifacts=not args.no_artifacts,
            serve_config=serve_config,
            metrics_out=_metrics_out_path(args),
            flight_dir=args.flight_dir,
            trace_dir=args.trace_dir,
            trace_sample=args.trace_sample,
        )
    if not args.stdio:
        print("repro: serve: give a transport: --stdio or --tcp HOST:PORT",
              file=sys.stderr)
        return 2
    from repro.serve.stdio import serve_stdio

    return serve_stdio(
        jobs=args.jobs,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
        disk_cache=not args.memory_cache,
        artifacts=not args.no_artifacts,
        metrics_out=_metrics_out_path(args),
        flight_dir=args.flight_dir,
        trace_dir=args.trace_dir,
        trace_sample=args.trace_sample,
    )


def cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.config import ServeConfig
    from repro.serve.net import loadgen

    if bool(args.connect) == bool(args.spawn):
        print("repro: loadgen: give exactly one of --connect HOST:PORT / --spawn",
              file=sys.stderr)
        return 2
    address = None
    if args.connect:
        try:
            address = ServeConfig.parse_address(args.connect)
        except ValueError as exc:
            print(f"repro: loadgen: {exc}", file=sys.stderr)
            return 2
    try:
        if args.corpus:
            corpus = loadgen.corpus_from_dir(args.corpus)
        elif args.requests_file:
            corpus = loadgen.corpus_from_jsonl(args.requests_file)
        else:
            corpus = loadgen.corpus_from_bench(heavy=args.heavy)
    except (OSError, ValueError, KeyError) as exc:
        print(f"repro: loadgen: bad corpus: {exc}", file=sys.stderr)
        return 2
    report = loadgen.run_loadgen(
        address=address,
        corpus=corpus,
        op="run" if args.run else "compile",
        concurrency=args.concurrency,
        duration=args.duration,
        requests=args.requests,
        seed=args.seed,
        duplicate_fraction=args.duplicate_fraction,
        tenants=tuple(args.tenants.split(",")) if args.tenants else ("default",),
        timeout=args.timeout,
        max_instructions=args.max_instructions,
        spawn=bool(args.spawn),
        spawn_jobs=args.jobs,
        cache_dir=args.cache_dir,
        check=args.check,
        tolerance=args.tolerance,
        trace_dir=args.trace_dir,
        trace_sample=args.trace_sample,
        latencies_out=args.latencies_out,
    )
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    if args.json or not sys.stdout.isatty():
        print(json.dumps(report, indent=2))
    else:
        latency = report["latency_s"]

        def ms(value: Optional[float]) -> str:
            return "-" if value is None else f"{value * 1000:.1f}ms"

        print(
            f"{report['completed']}/{report['requests']} completed, "
            f"{report['errors']} errors, {report['rejected']} rejected, "
            f"{report['deduped']} deduped, {report['cached']} cached "
            f"in {report['elapsed_s']}s "
            f"({report['throughput_rps']} req/s)"
        )
        print(
            f"latency p50 {ms(latency['p50'])}  p90 {ms(latency['p90'])}  "
            f"p99 {ms(latency['p99'])}  max {ms(latency['max'])}  "
            f"stddev {ms(latency['stddev'])}"
        )
    slo = report.get("slo")
    if slo is not None and not slo["ok"]:
        for violation in slo["violations"]:
            print(f"repro: loadgen: SLO violation: {violation}", file=sys.stderr)
        for entry in report.get("slowest", []):
            print(
                f"repro: loadgen: slowest: {entry['latency_s'] * 1000:.1f}ms "
                f"{entry.get('program')} trace {entry.get('trace')}",
                file=sys.stderr,
            )
        return 1
    if report["vuser_failures"]:
        return 1
    return 0


def cmd_aot(args: argparse.Namespace) -> int:
    if args.action == "build":
        return _aot_build(args)
    return _aot_run(args)


def _aot_build(args: argparse.Namespace) -> int:
    from repro.observe.catalog import declare
    from repro.observe.metrics import get_registry
    from repro.serve.cache import cache_key
    from repro.vm.aotemit import EmitInfo, emit_module_info

    if args.bench:
        from repro.benchsuite import BENCHMARKS

        if args.bench not in BENCHMARKS:
            print(f"repro: aot build: unknown benchmark {args.bench!r}",
                  file=sys.stderr)
            return 2
        source = BENCHMARKS[args.bench].source
        prelude = True
    else:
        if not args.file:
            print("repro: aot build: give a source file (or --bench NAME)",
                  file=sys.stderr)
            return 2
        source = _read_program(args.file)
        prelude = not args.no_prelude
    config = _config_from(args)
    if args.no_direct_calls:
        config = config.with_(aot_direct_calls=False)
    key = cache_key(source, config, prelude=prelude)
    compiled = compile_source(source, config, prelude=prelude)
    info = EmitInfo(0, 0, 0, 0)
    started = time.perf_counter()
    module_source = emit_module_info(compiled, key, info)
    elapsed = time.perf_counter() - started
    registry = get_registry()
    if registry.enabled:
        declare(registry, "repro_aot_emit_seconds").observe(elapsed)
    _write_out(args.out, module_source)
    print(
        f"; aot: {info.codes} code object(s), {info.traces} trace(s), "
        f"{info.direct_calls}/{info.call_sites} call site(s) direct "
        f"in {elapsed * 1e3:.1f} ms",
        file=sys.stderr,
    )
    if args.out and args.out != "-":
        print(f"; module written to {args.out}", file=sys.stderr)
    return 0


def _aot_run(args: argparse.Namespace) -> int:
    """Execute an emitted module in a fresh interpreter, so the
    compiler is provably absent from the executing process (its
    ``--json`` document lists the loaded ``repro_modules``; CI asserts
    no compiler module is among them)."""
    import os
    import subprocess

    import repro

    if not args.file:
        print("repro: aot run: give an emitted module path", file=sys.stderr)
        return 2
    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = pkg_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [sys.executable, args.file]
    if args.json:
        cmd.append("--json")
    if args.max_instructions is not None:
        cmd.extend(["--max-instructions", str(args.max_instructions)])
    return subprocess.call(cmd, env=env)


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.serve.cache import CompileCache, default_cache_dir

    root = args.cache_dir or default_cache_dir()
    cache = CompileCache(root=root)
    if args.action == "stats":
        entries, size = cache.disk_usage()
        doc = {"path": root, "entries": entries, "bytes": size}
        if args.verify:
            doc["verify"] = cache.verify(remove=args.remove_corrupt)
        doc["counters"] = cache.stats.as_dict()
        if args.json:
            print(json.dumps(doc, indent=2))
        else:
            print(f"path     {root}")
            print(f"entries  {entries}")
            print(f"bytes    {size:,}")
            for key, value in sorted(doc["counters"].items()):
                print(f"{key:12s} {value}")
            if args.verify:
                v = doc["verify"]
                print(
                    f"verify   {v['scanned']} scanned, {v['ok']} ok, "
                    f"{v['corrupt']} corrupt, {v['stale']} stale, "
                    f"{v['removed']} removed"
                )
                for tier, t in v["tiers"].items():
                    print(
                        f"  {tier:10s} {t['scanned']} scanned, {t['ok']} ok, "
                        f"{t['corrupt']} corrupt, {t['stale']} stale"
                    )
        return 1 if args.verify and doc["verify"]["corrupt"] else 0
    if args.action == "gc":
        if args.max_entries is None and args.max_bytes is None:
            print("repro: cache gc: give --max-entries and/or --max-bytes",
                  file=sys.stderr)
            return 2
        removed = cache.gc(max_entries=args.max_entries, max_bytes=args.max_bytes)
        print(f"; removed {removed} entry(ies)", file=sys.stderr)
        return 0
    # clear: the explicit invalidation command.
    removed = cache.clear()
    print(f"; cleared {removed} entry(ies) from {root}", file=sys.stderr)
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro.observe.metrics import (
        lint_openmetrics,
        load_snapshot,
        render_openmetrics,
    )

    path = args.path or ObserveConfig.from_env().metrics_path
    try:
        snapshot = load_snapshot(path)
    except OSError as exc:
        print(f"repro: metrics: cannot read {path}: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"repro: metrics: corrupt snapshot {path}: {exc}", file=sys.stderr)
        return 1
    if args.lint:
        problems = lint_openmetrics(render_openmetrics(snapshot))
        for problem in problems:
            print(f"openmetrics lint: {problem}", file=sys.stderr)
        if not problems:
            print(f"; openmetrics lint passed for {path}", file=sys.stderr)
        return 1 if problems else 0
    if args.json:
        print(json.dumps(snapshot, indent=2))
        return 0
    if args.openmetrics:
        sys.stdout.write(render_openmetrics(snapshot))
        return 0
    from repro.observe.top import render_dashboard

    sys.stdout.write(render_dashboard(snapshot))
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    from repro.observe.top import top_loop

    path = args.path or ObserveConfig.from_env().metrics_path
    iterations = 1 if args.once else args.iterations
    return top_loop(
        path,
        interval=args.interval,
        iterations=iterations,
        clear=not args.once,
    )


def cmd_spans(args: argparse.Namespace) -> int:
    from repro.observe import spanstore

    directory = args.trace_dir or ObserveConfig.from_env().trace_dir
    if not directory:
        print(
            "repro: spans: give --trace-dir DIR (or set $REPRO_TRACE_DIR)",
            file=sys.stderr,
        )
        return 2
    if not os.path.isdir(directory):
        print(f"repro: spans: no span store at {directory}", file=sys.stderr)
        return 1

    def load(trace_id: str):
        try:
            records = spanstore.load_trace(directory, trace_id)
        except ValueError as exc:
            print(f"repro: spans: {exc}", file=sys.stderr)
            return None
        if not records:
            print(f"repro: spans: no trace {trace_id!r} in {directory}",
                  file=sys.stderr)
            return None
        return records

    def row_line(row) -> str:
        dur_ms = row["dur_ns"] / 1e6
        pids = ",".join(str(p) for p in row["pids"])
        return (
            f"{row['trace']}  {dur_ms:9.3f}ms  {row['spans']:3d} span(s)  "
            f"op={row.get('op') or '-'} status={row.get('status') or '-'}  "
            f"pids {pids}"
        )

    if args.action == "list":
        rows = spanstore.trace_summaries(directory)
        if args.limit:
            rows = rows[: args.limit]
        if args.json:
            print(json.dumps(rows, indent=2))
            return 0
        if not rows:
            print("(no traces)")
            return 0
        for row in rows:
            print(row_line(row))
        return 0

    if args.action == "show":
        records = load(args.trace)
        if records is None:
            return 1
        if args.json:
            print(json.dumps(records, indent=2))
            return 0
        sys.stdout.write(spanstore.render_tree(records))
        return 0

    if args.action == "slowest":
        rows = spanstore.slowest_traces(directory, k=args.limit or 5)
        if not rows:
            print("(no traces)")
            return 0
        traces = []
        for row in rows:
            records = spanstore.load_trace(directory, row["trace"])
            if records:
                traces.append(records)
        if args.json:
            doc = {"slowest": rows}
            if args.critical_path:
                doc["critical_path_s"] = spanstore.critical_path_summary(traces)
            print(json.dumps(doc, indent=2))
            return 0
        for row in rows:
            print(row_line(row))
        if args.critical_path:
            summary = spanstore.critical_path_summary(traces)
            total = sum(summary.values()) or 1.0
            print(f"critical path across the {len(traces)} slowest trace(s):")
            for category, seconds in sorted(
                summary.items(), key=lambda kv: kv[1], reverse=True
            ):
                print(
                    f"  {category:<10s} {seconds * 1000:9.3f}ms "
                    f"({100 * seconds / total:5.1f}%)"
                )
        return 0

    # export
    records = load(args.trace)
    if records is None:
        return 1
    doc = spanstore.chrome_trace_from_records(records)
    payload = json.dumps(doc, indent=2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(payload + "\n")
        print(f"; chrome trace written to {args.out}", file=sys.stderr)
    else:
        print(payload)
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    from repro.benchsuite import BENCHMARKS

    for name, bench in sorted(BENCHMARKS.items()):
        print(f"{name:16s} {bench.description}")
        print(f"{'':16s}   scaling: {bench.scaling}")
    return 0


# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Lazy saves, eager restores, greedy shuffling — a "
            "reproduction of Burger, Waddell & Dybvig (PLDI 1995)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="compile and execute a program")
    p_run.add_argument("file", help="Scheme source file, or - for stdin")
    p_run.add_argument(
        "--counters", action="store_true", help="print counters to stderr"
    )
    p_run.add_argument(
        "--json",
        action="store_true",
        help="print value, counters and per-pass metrics as JSON",
    )
    p_run.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome trace_event JSON of the compile+run",
    )
    _add_config_flags(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_trace = sub.add_parser(
        "trace", help="compile+run with full tracing and profiling"
    )
    p_trace.add_argument("file", help="Scheme source file, or - for stdin")
    p_trace.add_argument(
        "--out", metavar="PATH", help="output path (default: stdout)"
    )
    p_trace.add_argument(
        "--format",
        choices=["chrome", "json", "text"],
        default="chrome",
        help="chrome trace_event JSON, flat metrics JSON, or text profile",
    )
    p_trace.add_argument(
        "--profile",
        action="store_true",
        help="include the per-procedure profile in chrome output",
    )
    _add_config_flags(p_trace)
    p_trace.set_defaults(fn=cmd_trace)

    p_dis = sub.add_parser("disasm", help="show generated code")
    p_dis.add_argument("file")
    p_dis.add_argument("--proc", help="only this procedure")
    _add_config_flags(p_dis)
    p_dis.set_defaults(fn=cmd_disasm)

    p_rep = sub.add_parser("report", help="show the allocator's decisions")
    p_rep.add_argument("file")
    p_rep.add_argument("--proc", help="only this procedure")
    _add_config_flags(p_rep)
    p_rep.set_defaults(fn=cmd_report)

    p_exp = sub.add_parser("expand", help="show the expanded core form")
    p_exp.add_argument("file")
    p_exp.add_argument("--no-prelude", action="store_true")
    p_exp.set_defaults(fn=cmd_expand)

    p_bench = sub.add_parser("bench", help="run benchmarks")
    p_bench.add_argument("names", nargs="*", help="benchmark names (default: all)")
    p_bench.add_argument(
        "--json", action="store_true", help="emit rows as JSON"
    )
    p_bench.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome trace of per-benchmark compile spans",
    )
    p_bench.add_argument(
        "--baseline-out",
        metavar="PATH",
        help="measure the fast VM and write a BENCH_vm.json baseline",
    )
    p_bench.add_argument(
        "--check-baseline",
        metavar="PATH",
        help="re-measure and fail on regression vs a committed baseline",
    )
    p_bench.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="timing repetitions per benchmark (default: 3)",
    )
    p_bench.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        metavar="F",
        help="allowed relative speedup regression for --check-baseline",
    )
    p_bench.add_argument(
        "--warm-start",
        action="store_true",
        help="measure cold vs ISA-cache vs artifact-cache vs AOT-import "
        "startup latency (alone: print the table; with --baseline-out: "
        "record a warm_start section)",
    )
    p_bench.add_argument(
        "--history",
        metavar="PATH",
        help="append one timestamped JSON record of this run to PATH",
    )
    _add_config_flags(p_bench, allocator_all=True, shuffle_all=True)
    p_bench.set_defaults(fn=cmd_bench)

    p_alloc = sub.add_parser(
        "alloc", help="inspect register allocation for one program"
    )
    p_alloc.add_argument("file")
    p_alloc.add_argument(
        "--compare",
        action="store_true",
        help="run the program under every allocator strategy and tabulate "
        "saves/restores/moves/spills/cycles",
    )
    p_alloc.add_argument(
        "--json", action="store_true", help="emit --compare rows as JSON"
    )
    _add_config_flags(p_alloc)
    p_alloc.set_defaults(fn=cmd_alloc)

    p_isa = sub.add_parser("isa", help="show the VM instruction set reference")
    p_isa.add_argument(
        "--markdown",
        action="store_true",
        help="emit the docs/isa.md document (CI checks it for drift)",
    )
    p_isa.add_argument(
        "--out", metavar="PATH", help="output path (default: stdout)"
    )
    p_isa.set_defaults(fn=cmd_isa)

    p_table = sub.add_parser("table", help="regenerate a paper table")
    p_table.add_argument(
        "which",
        choices=[
            "2", "3", "4", "5", "shuffle", "shuffle-study", "sweep", "restores",
        ],
    )
    p_table.add_argument("--names", nargs="*", help="benchmark subset")
    p_table.add_argument(
        "--markdown",
        action="store_true",
        help="shuffle-study: emit the markdown table embedded in "
        "docs/shuffle.md",
    )
    p_table.add_argument(
        "--check",
        metavar="PATH",
        help="shuffle-study: fail unless PATH contains the regenerated "
        "markdown table (the CI drift gate)",
    )
    p_table.set_defaults(fn=cmd_table)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differentially fuzz the compiler against the interpreter",
    )
    p_fuzz.add_argument("--seed", type=int, default=0, metavar="N")
    p_fuzz.add_argument(
        "--iterations",
        type=int,
        default=100,
        metavar="N",
        help="programs to generate and check (default: 100)",
    )
    p_fuzz.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop after this many seconds (iterations becomes a cap)",
    )
    p_fuzz.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default: 1)",
    )
    p_fuzz.add_argument(
        "--shrink",
        action="store_true",
        help="delta-debug each failing program to a local minimum",
    )
    p_fuzz.add_argument(
        "--replay",
        metavar="PATH",
        help="re-check one corpus entry instead of generating programs",
    )
    p_fuzz.add_argument(
        "--corpus",
        metavar="DIR",
        default="fuzzcorpus",
        help="directory for failure artifacts (default: fuzzcorpus)",
    )
    p_fuzz.add_argument(
        "--keep-interesting",
        type=int,
        default=0,
        metavar="N",
        help="also persist up to N cycle-heavy passing programs",
    )
    p_fuzz.add_argument(
        "--allocator",
        choices=ALLOCATOR_STRATEGIES,
        default=None,
        help="restrict the oracle to one binding allocator's config "
        "matrix (default: sweep the full matrix)",
    )
    p_fuzz.add_argument(
        "--shuffle",
        choices=SHUFFLE_STRATEGIES,
        default=None,
        help="restrict the oracle to one shuffle strategy's config "
        "matrix (ignored with --allocator; default: full matrix)",
    )
    p_fuzz.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    p_fuzz.set_defaults(fn=cmd_fuzz)

    p_batch = sub.add_parser(
        "batch",
        help="compile (or run) many programs through the cache and worker pool",
    )
    p_batch.add_argument(
        "input",
        nargs="*",
        help="JSON-lines request file (or - for stdin); with --bench, "
        "benchmark names (default: all)",
    )
    p_batch.add_argument(
        "--bench",
        action="store_true",
        help="take requests from the benchmark suite instead of a file",
    )
    p_batch.add_argument(
        "--run",
        action="store_true",
        help="with --bench, execute programs instead of compile-only",
    )
    p_batch.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes; 1 runs inline in this process (default: 1)",
    )
    p_batch.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="on-disk cache root (default: ~/.cache/repro)",
    )
    p_batch.add_argument(
        "--no-cache", action="store_true", help="disable the compile cache"
    )
    p_batch.add_argument(
        "--memory-cache",
        action="store_true",
        help="cache in memory only; do not touch the disk store",
    )
    p_batch.add_argument(
        "--no-artifacts",
        action="store_true",
        help="disable the executable-artifact cache tier",
    )
    p_batch.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request timeout (pooled mode only)",
    )
    p_batch.add_argument(
        "--max-instructions",
        type=int,
        default=None,
        metavar="N",
        help="per-request VM instruction budget",
    )
    p_batch.add_argument(
        "--json",
        action="store_true",
        help="emit one summary document instead of per-response lines",
    )
    p_batch.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome trace merging worker compile spans",
    )
    _add_observe_flags(p_batch)
    _add_config_flags(p_batch)
    p_batch.set_defaults(fn=cmd_batch)

    p_serve = sub.add_parser(
        "serve", help="long-lived JSON-lines compile daemon"
    )
    p_serve.add_argument(
        "--stdio",
        action="store_true",
        help="speak the JSON-lines protocol over stdin/stdout",
    )
    p_serve.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        help="listen on a TCP socket (port 0 = ephemeral; the bound "
        "port is announced in the 'listening' event on stdout)",
    )
    p_serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default: 1; requests still run out of process)",
    )
    farm = p_serve.add_argument_group("front door limits (--tcp)")
    farm.add_argument(
        "--max-clients", type=int, default=128, metavar="N",
        help="concurrent TCP connections (default: 128)",
    )
    farm.add_argument(
        "--max-pending", type=int, default=1024, metavar="N",
        help="admitted-but-unresolved requests across all tenants "
        "(default: 1024)",
    )
    farm.add_argument(
        "--max-pending-per-tenant", type=int, default=128, metavar="N",
        help="admitted-but-unresolved requests per tenant (default: 128)",
    )
    farm.add_argument(
        "--drain-grace", type=float, default=10.0, metavar="SECONDS",
        help="graceful-drain window for in-flight work on SIGTERM/shutdown "
        "(default: 10)",
    )
    farm.add_argument(
        "--no-dedup",
        action="store_true",
        help="disable single-flight dedup of identical in-flight requests",
    )
    farm.add_argument(
        "--cache-shards", type=int, default=8, metavar="N",
        help="compile-cache / flight-table shards by key prefix (default: 8)",
    )
    p_serve.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="on-disk cache root (default: ~/.cache/repro)",
    )
    p_serve.add_argument(
        "--no-cache", action="store_true", help="disable the compile cache"
    )
    p_serve.add_argument(
        "--memory-cache",
        action="store_true",
        help="cache in memory only; do not touch the disk store",
    )
    p_serve.add_argument(
        "--no-artifacts",
        action="store_true",
        help="disable the executable-artifact cache tier",
    )
    _add_observe_flags(p_serve)
    p_serve.set_defaults(fn=cmd_serve)

    p_load = sub.add_parser(
        "loadgen",
        help="replay a corpus against the TCP daemon and report latency "
        "percentiles (the SLO gate)",
    )
    target = p_load.add_argument_group("target (pick one)")
    target.add_argument(
        "--connect", metavar="HOST:PORT",
        help="load an already-running repro serve --tcp daemon",
    )
    target.add_argument(
        "--spawn",
        action="store_true",
        help="spawn an in-process server (cold cache) for the run",
    )
    shape = p_load.add_argument_group("load shape")
    shape.add_argument(
        "--concurrency", type=int, default=8, metavar="N",
        help="virtual users, one connection each (default: 8)",
    )
    shape.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="run for a wall-clock window instead of a request count",
    )
    shape.add_argument(
        "--requests", type=int, default=None, metavar="N",
        help="requests per virtual user (default: 10 when no --duration)",
    )
    shape.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="schedule seed; same seed + corpus + shape replays the same "
        "request sequence (default: 0)",
    )
    shape.add_argument(
        "--duplicate-fraction", type=float, default=0.5, metavar="F",
        help="fraction of picks drawn from the shared hot set — what "
        "makes single-flight dedup observable (default: 0.5)",
    )
    shape.add_argument(
        "--tenants", metavar="A,B,...",
        help="comma-separated tenant names, assigned round-robin to "
        "virtual users (default: one 'default' tenant)",
    )
    corpus = p_load.add_argument_group("corpus (default: the benchsuite)")
    corpus.add_argument(
        "--corpus", metavar="DIR",
        help="directory of .sexp programs (e.g. a fuzz corpus)",
    )
    corpus.add_argument(
        "--requests-file", metavar="PATH",
        help="JSON-lines request file (the repro batch format)",
    )
    corpus.add_argument(
        "--heavy", action="store_true",
        help="with the benchsuite corpus, include heavy benchmarks",
    )
    p_load.add_argument(
        "--run", action="store_true",
        help="execute programs instead of compile-only",
    )
    p_load.add_argument(
        "--jobs", type=int, default=4, metavar="N",
        help="--spawn: worker processes for the spawned server (default: 4)",
    )
    p_load.add_argument(
        "--cache-dir", metavar="DIR",
        help="--spawn: on-disk cache root (default: memory-only cache)",
    )
    p_load.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-request timeout",
    )
    p_load.add_argument(
        "--max-instructions", type=int, default=None, metavar="N",
        help="per-request VM instruction budget",
    )
    gate = p_load.add_argument_group("SLO gate")
    gate.add_argument(
        "--check", metavar="PATH",
        help="gate the report against committed thresholds "
        "(BENCH_serve.json); exit 1 on violation",
    )
    gate.add_argument(
        "--tolerance", type=float, default=1.0, metavar="F",
        help="multiplier applied to latency ceilings from --check, to "
        "absorb shared-runner noise (default: 1.0)",
    )
    p_load.add_argument(
        "--out", metavar="PATH", help="also write the report JSON to a file"
    )
    p_load.add_argument(
        "--latencies-out", metavar="PATH",
        help="also write one JSON line per request "
        "(latency, status, trace id) to a file",
    )
    p_load.add_argument(
        "--json", action="store_true",
        help="print the full report JSON (default when not a tty)",
    )
    trace = p_load.add_argument_group("tracing (--spawn only)")
    trace.add_argument(
        "--trace-dir", metavar="DIR", default=None,
        help="--spawn: span store directory for the spawned server",
    )
    trace.add_argument(
        "--trace-sample", type=float, default=1.0, metavar="RATE",
        help="--spawn: tail-sampling keep rate for ok traces (default 1.0)",
    )
    p_load.set_defaults(fn=cmd_loadgen)

    p_aot = sub.add_parser(
        "aot",
        help="ahead-of-time compile a program to a standalone Python module",
    )
    p_aot.add_argument(
        "action",
        choices=["build", "run"],
        help="build: emit a module; run: execute an emitted module in a "
        "fresh compiler-free interpreter",
    )
    p_aot.add_argument(
        "file",
        nargs="?",
        help="build: Scheme source (or - for stdin); run: emitted module path",
    )
    p_aot.add_argument(
        "--bench",
        metavar="NAME",
        help="build: take the program from the benchmark suite",
    )
    p_aot.add_argument(
        "-o", "--out", metavar="PATH",
        help="build: output module path (default: stdout)",
    )
    p_aot.add_argument(
        "--no-direct-calls",
        action="store_true",
        help="build: keep every call site on the dynamic dispatch path",
    )
    p_aot.add_argument(
        "--json",
        action="store_true",
        help="run: print the emitted module's value/counters JSON",
    )
    p_aot.add_argument(
        "--max-instructions", type=int, default=None, metavar="N",
        help="run: instruction budget for the emitted module",
    )
    _add_config_flags(p_aot)
    p_aot.set_defaults(fn=cmd_aot)

    p_cache = sub.add_parser("cache", help="inspect or prune the compile cache")
    p_cache.add_argument(
        "action",
        choices=["stats", "gc", "clear"],
        help="stats: show usage; gc: prune to limits; clear: invalidate all",
    )
    p_cache.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="on-disk cache root (default: ~/.cache/repro)",
    )
    p_cache.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        help="gc: keep at most N entries (oldest evicted first)",
    )
    p_cache.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="gc: keep at most N bytes of entries",
    )
    p_cache.add_argument(
        "--verify",
        action="store_true",
        help="stats: integrity-scan every disk entry's checksum",
    )
    p_cache.add_argument(
        "--remove-corrupt",
        action="store_true",
        help="with --verify, delete entries that fail validation",
    )
    p_cache.add_argument("--json", action="store_true")
    p_cache.set_defaults(fn=cmd_cache)

    p_metrics = sub.add_parser(
        "metrics", help="inspect a service metrics snapshot"
    )
    p_metrics.add_argument(
        "--path",
        metavar="PATH",
        help="snapshot file (default: $REPRO_METRICS_PATH or "
        "~/.cache/repro/metrics.json)",
    )
    p_metrics.add_argument(
        "--json", action="store_true", help="print the raw snapshot JSON"
    )
    p_metrics.add_argument(
        "--openmetrics",
        action="store_true",
        help="render the snapshot as OpenMetrics exposition text",
    )
    p_metrics.add_argument(
        "--lint",
        action="store_true",
        help="render as OpenMetrics and check it for format violations",
    )
    p_metrics.set_defaults(fn=cmd_metrics)

    p_top = sub.add_parser(
        "top", help="refresh-loop dashboard over the metrics snapshot"
    )
    p_top.add_argument(
        "--path",
        metavar="PATH",
        help="snapshot file (default: $REPRO_METRICS_PATH or "
        "~/.cache/repro/metrics.json)",
    )
    p_top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period (default: 2.0)",
    )
    p_top.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="stop after N frames (default: run until interrupted)",
    )
    p_top.add_argument(
        "--once",
        action="store_true",
        help="render a single frame without clearing the screen",
    )
    p_top.set_defaults(fn=cmd_top)

    p_spans = sub.add_parser(
        "spans", help="inspect the request-trace span store"
    )
    span_sub = p_spans.add_subparsers(dest="action", required=True)

    def _span_store_flags(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--trace-dir",
            metavar="DIR",
            default=None,
            help="span store directory (default: $REPRO_TRACE_DIR)",
        )
        sp.add_argument(
            "--json", action="store_true", help="machine-readable output"
        )

    sp_list = span_sub.add_parser("list", help="one row per stored trace")
    sp_list.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="show the N newest traces (default: 20; 0 = all)",
    )
    _span_store_flags(sp_list)
    sp_show = span_sub.add_parser(
        "show", help="render one trace's span tree (id may be a prefix)"
    )
    sp_show.add_argument("trace", help="trace id or unique prefix")
    _span_store_flags(sp_show)
    sp_slow = span_sub.add_parser(
        "slowest", help="the slowest stored traces"
    )
    sp_slow.add_argument(
        "--limit", type=int, default=5, metavar="K",
        help="how many traces (default: 5)",
    )
    sp_slow.add_argument(
        "--critical-path",
        action="store_true",
        help="attribute their wall-clock to admission/queue/compile/"
        "cache/write",
    )
    _span_store_flags(sp_slow)
    sp_export = span_sub.add_parser(
        "export", help="export one trace as Chrome trace_event JSON"
    )
    sp_export.add_argument("trace", help="trace id or unique prefix")
    sp_export.add_argument(
        "--chrome", action="store_true",
        help="Chrome trace_event format (the only format; default)",
    )
    sp_export.add_argument(
        "-o", "--out", metavar="PATH", help="output path (default: stdout)"
    )
    _span_store_flags(sp_export)
    p_spans.set_defaults(fn=cmd_spans)

    p_list = sub.add_parser("list", help="list benchmarks")
    p_list.set_defaults(fn=cmd_list)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # output piped into head etc.
        return 0
    except ReaderError as exc:
        print(f"repro: read error: {exc}", file=sys.stderr)
        return 1
    except CompilerError as exc:
        print(f"repro: compile error: {exc}", file=sys.stderr)
        return 1
    except FuzzError as exc:
        print(f"repro: fuzz error: {exc}", file=sys.stderr)
        return 1
    except ServeError as exc:
        print(f"repro: serve error: {exc}", file=sys.stderr)
        return 1
    except SchemeError as exc:
        print(f"repro: runtime error: {exc}", file=sys.stderr)
        return 1
    except VMError as exc:
        print(f"repro: vm error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
