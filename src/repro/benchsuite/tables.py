"""Generators for every table and figure in the paper's evaluation.

Each ``table*``/``*_experiment`` function returns structured rows; the
matching ``format_*`` helper renders them in the paper's layout.  The
pytest benchmarks under ``benchmarks/`` call these and print the
results, so ``pytest benchmarks/ --benchmark-only`` regenerates the
whole evaluation section.

Experiment index (see DESIGN.md §3):

* :func:`table2`                — dynamic call-graph summary
* :func:`table3`                — stack-reference reduction + speedup for
  lazy/early/late saves vs the no-register baseline
* :func:`table4`                — tak: Chez-style vs C-style conventions
* :func:`table5`                — tak: early vs lazy callee-save
* :func:`shuffle_stats`         — §3.1 greedy-vs-optimal shuffling
* :func:`register_sweep`        — §4 performance vs number of registers
* :func:`restore_comparison`    — §2.2/Figure 2 eager vs lazy restores
* :func:`compile_time_profile`  — §4 allocator share of compile time
* :func:`branch_prediction_experiment` — §6 static branch prediction
* :func:`save_placement_ablation`      — §2.1 simple vs revised algorithm
* :func:`allocator_ablation`           — lazy vs linear scan vs graph
  coloring under the shared save/restore/shuffle machinery
* :func:`shuffle_study`                — greedy vs exhaustive-optimal vs
  permutation-instruction (``permopt``) shuffle codegen over the
  benchsuite and a shuffle-heavy fuzz corpus
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.astnodes import Call, walk
from repro.benchsuite.programs import BENCHMARKS, get_benchmark
from repro.benchsuite.runner import run_benchmark
from repro.config import CompilerConfig, CostModel
from repro.core.shuffle import dependency_edges, minimum_evictions
from repro.pipeline import CompileTimes, compile_source, run_compiled
from repro.vm.callgraph import CATEGORIES

# The paper's table rows: the Gabriel suite plus the application-scale
# substitutes.  Local microbenchmarks are excluded by default.
DEFAULT_NAMES: Tuple[str, ...] = tuple(
    name for name, b in BENCHMARKS.items() if b.paper
)

# A compact subset for quick benchmark runs (pytest-benchmark rounds).
FAST_NAMES: Tuple[str, ...] = (
    "tak",
    "cpstak",
    "deriv",
    "div-rec",
    "browse",
    "fread",
)


def _names(names: Optional[Iterable[str]]) -> List[str]:
    return list(names) if names is not None else list(DEFAULT_NAMES)


# ---------------------------------------------------------------------------
# Table 2: dynamic call-graph summary
# ---------------------------------------------------------------------------


def table2(names: Optional[Iterable[str]] = None) -> List[Dict[str, object]]:
    """Per benchmark: total activations and the fraction in each of the
    paper's four categories.  The paper's headline: effective leaves
    (the first two categories) are over two thirds on average."""
    rows: List[Dict[str, object]] = []
    for name in _names(names):
        run = run_benchmark(name)
        fractions = run.classifier.fractions()
        rows.append(
            {
                "benchmark": name,
                "activations": run.classifier.total,
                **fractions,
                "effective-leaf": run.classifier.effective_leaf_fraction,
            }
        )
    if rows:
        avg = {
            "benchmark": "AVERAGE",
            "activations": sum(r["activations"] for r in rows) // len(rows),
        }
        for cat in (*CATEGORIES, "effective-leaf"):
            avg[cat] = sum(r[cat] for r in rows) / len(rows)
        rows.append(avg)
    return rows


def format_table2(rows: Sequence[Dict[str, object]]) -> str:
    header = (
        f"{'Benchmark':15s} {'Activations':>12s} "
        f"{'syn-leaf':>9s} {'nonsyn-leaf':>12s} {'nonsyn-int':>11s} "
        f"{'syn-int':>8s} {'eff-leaf':>9s}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['benchmark']:15s} {r['activations']:>12d} "
            f"{r['syntactic-leaf']:>9.1%} {r['non-syntactic-leaf']:>12.1%} "
            f"{r['non-syntactic-internal']:>11.1%} {r['syntactic-internal']:>8.1%} "
            f"{r['effective-leaf']:>9.1%}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 3: save strategies vs the no-register baseline
# ---------------------------------------------------------------------------

_SAVE_STRATEGIES = ("lazy", "early", "late")


def table3(
    names: Optional[Iterable[str]] = None,
    strategies: Sequence[str] = _SAVE_STRATEGIES,
) -> List[Dict[str, object]]:
    """Stack-reference reduction and cycle speedup of each save
    strategy (6 argument registers) relative to the 0-register
    baseline."""
    rows: List[Dict[str, object]] = []
    baseline_cfg = CompilerConfig.baseline()
    for name in _names(names):
        base = run_benchmark(name, baseline_cfg)
        row: Dict[str, object] = {
            "benchmark": name,
            "baseline-refs": base.stack_refs,
            "baseline-cycles": base.cycles,
        }
        for strategy in strategies:
            run = run_benchmark(name, CompilerConfig(save_strategy=strategy))
            row[f"{strategy}-refs"] = run.stack_refs
            row[f"{strategy}-cycles"] = run.cycles
            row[f"{strategy}-ref-reduction"] = (
                1.0 - run.stack_refs / base.stack_refs if base.stack_refs else 0.0
            )
            row[f"{strategy}-speedup"] = (
                base.cycles / run.cycles - 1.0 if run.cycles else 0.0
            )
        rows.append(row)
    if rows:
        avg: Dict[str, object] = {"benchmark": "AVERAGE"}
        for strategy in strategies:
            for metric in ("ref-reduction", "speedup"):
                key = f"{strategy}-{metric}"
                avg[key] = sum(r[key] for r in rows) / len(rows)
        rows.append(avg)
    return rows


def format_table3(rows: Sequence[Dict[str, object]]) -> str:
    header = f"{'Benchmark':15s}"
    for strategy in _SAVE_STRATEGIES:
        header += f" {strategy + ' refs':>12s} {strategy + ' perf':>12s}"
    lines = [header, "-" * len(header)]
    for r in rows:
        line = f"{r['benchmark']:15s}"
        for strategy in _SAVE_STRATEGIES:
            rr = r.get(f"{strategy}-ref-reduction")
            sp = r.get(f"{strategy}-speedup")
            line += f" {rr:>12.1%} {sp:>12.1%}" if rr is not None else " " * 26
        lines.append(line)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Tables 4 and 5: caller/callee-save comparisons on tak
# ---------------------------------------------------------------------------


def table4(name: str = "tak") -> List[Dict[str, object]]:
    """Chez (caller-save, lazy) against C-compiler-style code
    (callee-save, early saves) on tak.  Cycles normalized to the
    C-style configuration, as the paper normalizes to Alpha cc."""
    cstyle = run_benchmark(
        name, CompilerConfig(save_convention="callee", save_strategy="early")
    )
    chez = run_benchmark(name, CompilerConfig())
    rows = []
    for label, run in (("cc-style (callee early)", cstyle), ("Chez-style (caller lazy)", chez)):
        rows.append(
            {
                "system": label,
                "cycles": run.cycles,
                "stack-refs": run.stack_refs,
                "speedup-vs-cc": cstyle.cycles / run.cycles - 1.0,
            }
        )
    return rows


def table5(name: str = "tak") -> List[Dict[str, object]]:
    """Early vs lazy save placement for callee-save registers, plus the
    caller-save lazy configuration (the paper's hand-coded assembly)."""
    configs = [
        ("callee-save early", CompilerConfig(save_convention="callee", save_strategy="early")),
        ("callee-save lazy", CompilerConfig(save_convention="callee", save_strategy="lazy")),
        ("caller-save lazy", CompilerConfig()),
    ]
    runs = {label: run_benchmark(name, cfg) for label, cfg in configs}
    early = runs["callee-save early"]
    rows = []
    for label, run in runs.items():
        rows.append(
            {
                "configuration": label,
                "cycles": run.cycles,
                "stack-refs": run.stack_refs,
                "saves": run.counters.saves,
                "restores": run.counters.restores,
                "speedup-vs-early": early.cycles / run.cycles - 1.0,
            }
        )
    return rows


def format_table45(rows: Sequence[Dict[str, object]], key: str) -> str:
    label_key = "system" if "system" in rows[0] else "configuration"
    lines = []
    for r in rows:
        lines.append(
            f"{r[label_key]:28s} cycles={r['cycles']:>10d} "
            f"stack-refs={r['stack-refs']:>9d} {key}={r[key]:>7.1%}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# §3.1: shuffling statistics (greedy vs exhaustive optimal)
# ---------------------------------------------------------------------------


def shuffle_stats(names: Optional[Iterable[str]] = None) -> Dict[str, object]:
    """Compile every benchmark and compare the greedy shuffler against
    exhaustive search at every call site.

    The paper: only 7% of call sites had cycles, and greedy was optimal
    everywhere except six sites in the compiler (one extra temporary
    each)."""
    total_sites = 0
    cyclic_sites = 0
    optimal_sites = 0
    extra_temps = 0
    for name in _names(names):
        bench = get_benchmark(name)
        compiled = compile_source(bench.source, CompilerConfig())
        for code in compiled.codes:
            alloc = compiled.allocation.alloc_for(code)
            for node in walk(code.body):
                if not isinstance(node, Call):
                    continue
                plan = node.shuffle_plan
                total_sites += 1
                if plan.had_cycle:
                    cyclic_sites += 1
                simple = [
                    it
                    for it in plan.register_items
                    if not it.is_complex
                ]
                edges = dependency_edges(simple)
                best = minimum_evictions(len(simple), edges)
                if plan.evictions == best:
                    optimal_sites += 1
                else:
                    extra_temps += plan.evictions - best
    return {
        "call-sites": total_sites,
        "cyclic-sites": cyclic_sites,
        "cyclic-fraction": cyclic_sites / total_sites if total_sites else 0.0,
        "greedy-optimal-sites": optimal_sites,
        "greedy-optimal-fraction": optimal_sites / total_sites if total_sites else 0.0,
        "extra-temporaries": extra_temps,
    }


# ---------------------------------------------------------------------------
# §4: register-count sweep and shuffling ablation
# ---------------------------------------------------------------------------


def register_sweep(
    names: Optional[Iterable[str]] = None,
    counts: Sequence[int] = (0, 1, 2, 3, 4, 5, 6),
    shuffle_strategies: Sequence[str] = ("greedy", "naive"),
) -> List[Dict[str, object]]:
    """Cycles as a function of the number of argument/user registers.

    The paper: performance increases monotonically from zero through
    six registers, and without the greedy shuffler it *decreases* past
    two argument registers."""
    rows = []
    for count in counts:
        row: Dict[str, object] = {"registers": count}
        for strategy in shuffle_strategies:
            cfg = CompilerConfig(
                num_arg_regs=count,
                num_temp_regs=count,
                shuffle_strategy=strategy,
            )
            cycles = 0
            refs = 0
            for name in _names(names):
                run = run_benchmark(name, cfg)
                cycles += run.cycles
                refs += run.stack_refs
            row[f"{strategy}-cycles"] = cycles
            row[f"{strategy}-refs"] = refs
        rows.append(row)
    return rows


def format_register_sweep(rows: Sequence[Dict[str, object]]) -> str:
    strategies = sorted(
        {k[: -len("-cycles")] for k in rows[0] if k.endswith("-cycles")}
    )
    header = f"{'regs':>4s}" + "".join(
        f" {s + ' cycles':>16s}" for s in strategies
    )
    lines = [header]
    for r in rows:
        line = f"{r['registers']:>4d}"
        for s in strategies:
            line += f" {r.get(f'{s}-cycles', 0):>16d}"
        lines.append(line)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# §2.2 / Figure 2: eager vs lazy restores across memory latencies
# ---------------------------------------------------------------------------


def restore_comparison(
    names: Optional[Iterable[str]] = None,
    latencies: Sequence[int] = (1, 3, 6),
) -> List[Dict[str, object]]:
    """Restores executed and cycles for eager vs lazy restore
    placement, across load latencies.

    The paper found eager restores "produced code that ran just as fast
    as the code produced by the lazy approach": lazy executes fewer
    restores, but eager's early issue hides the latency."""
    rows = []
    for latency in latencies:
        cost = CostModel(load_latency=latency)
        for strategy in ("eager", "lazy"):
            cfg = CompilerConfig(restore_strategy=strategy, cost_model=cost)
            cycles = 0
            restores = 0
            refs = 0
            for name in _names(names):
                run = run_benchmark(name, cfg)
                cycles += run.cycles
                restores += run.counters.restores
                refs += run.stack_refs
            rows.append(
                {
                    "latency": latency,
                    "strategy": strategy,
                    "cycles": cycles,
                    "restores": restores,
                    "stack-refs": refs,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# §4: compile-time profile
# ---------------------------------------------------------------------------


def compile_time_profile(
    names: Optional[Iterable[str]] = None, repeats: int = 3
) -> Dict[str, object]:
    """Fraction of compile time spent in register allocation (the
    paper reports ~7% for Chez).

    Timings come from the ``repro.observe`` tracer (one span per pass,
    aggregated over *repeats*); the :class:`CompileTimes` path stays
    available for callers that pass their own accumulator to
    :func:`compile_source`.
    """
    from repro.observe import Tracer

    tracer = Tracer()
    for _ in range(repeats):
        for name in _names(names):
            compile_source(
                get_benchmark(name).source, CompilerConfig(), tracer=tracer
            )
    phases = tracer.pass_timings()
    phases.pop("compile", None)  # the parent span double-counts
    times = CompileTimes()
    for phase, seconds in phases.items():
        times.record(phase, seconds)
    return {
        "phases": dict(times.phases),
        "total-seconds": times.total,
        "register-allocation-fraction": times.register_allocation_fraction(),
    }


# ---------------------------------------------------------------------------
# §6: static branch prediction
# ---------------------------------------------------------------------------


def branch_prediction_experiment(
    names: Optional[Iterable[str]] = None,
) -> List[Dict[str, object]]:
    """Call-free-path-likely static prediction vs a plain
    fallthrough-predicted baseline (the paper reports a small 2-3%
    consistent improvement)."""
    rows = []
    for name in _names(names):
        base = run_benchmark(name, CompilerConfig(branch_prediction="fallthrough"))
        pred = run_benchmark(name, CompilerConfig(branch_prediction="static-calls"))
        rows.append(
            {
                "benchmark": name,
                "fallthrough-cycles": base.cycles,
                "static-calls-cycles": pred.cycles,
                "fallthrough-mispredicts": base.counters.mispredicts,
                "static-calls-mispredicts": pred.counters.mispredicts,
                "improvement": base.cycles / pred.cycles - 1.0,
            }
        )
    if rows:
        rows.append(
            {
                "benchmark": "AVERAGE",
                "improvement": sum(r["improvement"] for r in rows) / len(rows),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Allocator arena: lazy vs linear scan vs graph coloring
# ---------------------------------------------------------------------------

ALLOCATORS: Tuple[str, ...] = ("lazy", "linearscan", "graphcolor")


def allocator_ablation(
    names: Optional[Iterable[str]] = None,
    allocators: Sequence[str] = ALLOCATORS,
    base_config: Optional[CompilerConfig] = None,
) -> List[Dict[str, object]]:
    """Per benchmark and allocator strategy: dynamic saves, restores,
    shuffle moves, spill stack references, static spill count, and
    cycles — the apples-to-apples comparison the paper never ran.  All
    strategies share the lazy-save / eager-restore / greedy-shuffle
    machinery; only the binding assignment differs, so the deltas
    isolate the register-assignment policy itself.

    ``base_config`` fixes every other knob (defaults to the paper
    configuration); each allocator point is ``base_config.with_(
    allocator=...)``.
    """
    base = base_config or CompilerConfig()
    rows: List[Dict[str, object]] = []
    for name in _names(names):
        row: Dict[str, object] = {"benchmark": name}
        for allocator in allocators:
            run = run_benchmark(name, base.with_(allocator=allocator))
            counters = run.counters
            spill_refs = counters.stack_reads.get(
                "spill", 0
            ) + counters.stack_writes.get("spill", 0)
            allocation = run.result.compiled.allocation
            row[f"{allocator}-saves"] = counters.saves
            row[f"{allocator}-restores"] = counters.restores
            row[f"{allocator}-moves"] = counters.moves
            row[f"{allocator}-swaps"] = counters.swaps
            row[f"{allocator}-spill-refs"] = spill_refs
            row[f"{allocator}-spilled-vars"] = allocation.stats.spilled
            row[f"{allocator}-stack-refs"] = run.stack_refs
            row[f"{allocator}-cycles"] = run.cycles
        rows.append(row)
    if rows:
        total: Dict[str, object] = {"benchmark": "TOTAL"}
        for allocator in allocators:
            for metric in (
                "saves",
                "restores",
                "moves",
                "swaps",
                "spill-refs",
                "spilled-vars",
                "stack-refs",
                "cycles",
            ):
                key = f"{allocator}-{metric}"
                total[key] = sum(r[key] for r in rows)
        rows.append(total)
    return rows


def format_allocator_ablation(
    rows: Sequence[Dict[str, object]],
    allocators: Sequence[str] = ALLOCATORS,
) -> str:
    header = f"{'Benchmark':15s}"
    for allocator in allocators:
        header += (
            f" | {allocator + ' saves':>12s} {'restores':>9s} {'moves':>9s}"
            f" {'swaps':>7s} {'spills':>7s} {'cycles':>10s}"
        )
    lines = [header, "-" * len(header)]
    for r in rows:
        line = f"{r['benchmark']:15s}"
        for allocator in allocators:
            line += (
                f" | {r[f'{allocator}-saves']:>12d}"
                f" {r[f'{allocator}-restores']:>9d}"
                f" {r[f'{allocator}-moves']:>9d}"
                f" {r[f'{allocator}-swaps']:>7d}"
                f" {r[f'{allocator}-spilled-vars']:>7d}"
                f" {r[f'{allocator}-cycles']:>10d}"
            )
        lines.append(line)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Shuffle-codegen study: greedy vs optimal vs permutation instructions
# ---------------------------------------------------------------------------

SHUFFLE_STUDY_STRATEGIES: Tuple[str, ...] = ("greedy", "optimal", "permopt")


def _static_shuffle_stats(compiled) -> Dict[str, int]:
    """Static shuffle-plan totals for one compiled program: call sites,
    cyclic sites, evictions (extra temporaries), and permutation steps."""
    sites = cyclic = evictions = permutations = 0
    for code in compiled.codes:
        for node in walk(code.body):
            if not isinstance(node, Call):
                continue
            plan = node.shuffle_plan
            sites += 1
            if plan.had_cycle:
                cyclic += 1
            evictions += plan.evictions
            permutations += plan.permutations
    return {
        "call-sites": sites,
        "cyclic-sites": cyclic,
        "evictions": evictions,
        "permutations": permutations,
    }


def shuffle_corpus(
    seed: int = 2025, count: int = 3, scan_limit: int = 64
) -> List[Tuple[str, str]]:
    """A deterministic shuffle-heavy corpus: scan the fuzz generator's
    programs for *seed* in index order and keep the first *count* whose
    greedy compile contains at least one shuffle cycle.  Both the
    generator and the selection are seed-determined, so the corpus (and
    every table built on it) is reproducible."""
    from repro.errors import CompilerError
    from repro.fuzz.genprog import ProgramGenerator

    generator = ProgramGenerator(seed)
    picked: List[Tuple[str, str]] = []
    for index in range(scan_limit):
        if len(picked) >= count:
            break
        program = generator.generate(index)
        try:
            compiled = compile_source(program.source, CompilerConfig())
        except CompilerError:  # pragma: no cover - generator emits valid code
            continue
        if _static_shuffle_stats(compiled)["cyclic-sites"]:
            picked.append((f"fuzz-{seed}-{index}", program.source))
    return picked


def shuffle_study(
    names: Optional[Iterable[str]] = None,
    strategies: Sequence[str] = SHUFFLE_STUDY_STRATEGIES,
    fuzz_count: int = 3,
) -> List[Dict[str, object]]:
    """Per program and shuffle strategy: dynamic moves, permutation
    instructions (swap/permi), static evictions, and cycles — the
    greedy-vs-optimal study over the paper benchmarks plus a
    shuffle-heavy fuzz corpus (see :func:`shuffle_corpus`).

    ``permopt`` replaces every pure register cycle's eviction with
    permutation instructions, so its eviction column is the count of
    cycles the other strategies had to break with a temporary.  All
    numbers are simulator counters: fully deterministic, no wall clock.
    """
    programs: List[Tuple[str, str]] = [
        (name, get_benchmark(name).source) for name in _names(names)
    ]
    if fuzz_count:
        programs.extend(shuffle_corpus(count=fuzz_count))
    rows: List[Dict[str, object]] = []
    for name, source in programs:
        row: Dict[str, object] = {"program": name}
        for strategy in strategies:
            cfg = CompilerConfig(shuffle_strategy=strategy)
            compiled = compile_source(source, cfg)
            result = run_compiled(compiled)
            counters = result.counters
            static = _static_shuffle_stats(compiled)
            row[f"{strategy}-moves"] = counters.moves
            row[f"{strategy}-swaps"] = counters.swaps
            row[f"{strategy}-evictions"] = static["evictions"]
            row[f"{strategy}-permutations"] = static["permutations"]
            row[f"{strategy}-cycles"] = counters.cycles
        rows.append(row)
    if rows:
        total: Dict[str, object] = {"program": "TOTAL"}
        for strategy in strategies:
            for metric in ("moves", "swaps", "evictions", "permutations", "cycles"):
                key = f"{strategy}-{metric}"
                total[key] = sum(r[key] for r in rows)
        rows.append(total)
    return rows


def format_shuffle_study(
    rows: Sequence[Dict[str, object]],
    strategies: Sequence[str] = SHUFFLE_STUDY_STRATEGIES,
) -> str:
    header = f"{'Program':15s}"
    for strategy in strategies:
        header += (
            f" | {strategy + ' moves':>14s} {'swaps':>6s}"
            f" {'evict':>6s} {'cycles':>11s}"
        )
    lines = [header, "-" * len(header)]
    for r in rows:
        line = f"{r['program']:15s}"
        for strategy in strategies:
            line += (
                f" | {r[f'{strategy}-moves']:>14d}"
                f" {r[f'{strategy}-swaps']:>6d}"
                f" {r[f'{strategy}-evictions']:>6d}"
                f" {r[f'{strategy}-cycles']:>11d}"
            )
        lines.append(line)
    return "\n".join(lines)


def markdown_shuffle_study(
    rows: Sequence[Dict[str, object]],
    strategies: Sequence[str] = SHUFFLE_STUDY_STRATEGIES,
) -> str:
    """The :func:`shuffle_study` rows as a GitHub-flavoured markdown
    table — the exact text embedded in ``docs/shuffle.md`` and checked
    for drift by CI (``repro table shuffle-study --check``)."""
    cols = ["Program"]
    for strategy in strategies:
        cols += [
            f"{strategy} moves",
            f"{strategy} swaps",
            f"{strategy} evictions",
            f"{strategy} cycles",
        ]
    lines = [
        "| " + " | ".join(cols) + " |",
        "|" + "|".join("---" for _ in cols) + "|",
    ]
    for r in rows:
        cells = [str(r["program"])]
        for strategy in strategies:
            cells += [
                str(r[f"{strategy}-moves"]),
                str(r[f"{strategy}-swaps"]),
                str(r[f"{strategy}-evictions"]),
                str(r[f"{strategy}-cycles"]),
            ]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# §2.1 ablation: simple vs revised lazy algorithm
# ---------------------------------------------------------------------------


def save_placement_ablation(
    names: Optional[Iterable[str]] = None,
) -> List[Dict[str, object]]:
    """The revised St/Sf algorithm against the too-lazy simple S[E]
    algorithm of §2.1.1 (which misses saves around short-circuit
    booleans and pays with late in-region saves elsewhere)."""
    rows = []
    for name in _names(names):
        revised = run_benchmark(name, CompilerConfig(save_strategy="lazy"))
        simple = run_benchmark(name, CompilerConfig(save_strategy="lazy-simple"))
        rows.append(
            {
                "benchmark": name,
                "revised-refs": revised.stack_refs,
                "simple-refs": simple.stack_refs,
                "revised-saves": revised.counters.saves,
                "simple-saves": simple.counters.saves,
                "revised-cycles": revised.cycles,
                "simple-cycles": simple.cycles,
            }
        )
    return rows
