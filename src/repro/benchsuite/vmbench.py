"""VM throughput baseline: collection, serialization, and comparison.

``repro bench --baseline-out BENCH_vm.json`` records, for every
non-heavy benchmark, the *deterministic* execution signature of the
fast VM (value, instruction count, cycle count, and the derived
instruction-category mix) plus, for a fixed timing corpus, the
measured throughput of the fast and legacy loops and their ratio.

``repro bench --check-baseline BENCH_vm.json`` (the CI gate) re-runs
the suite and fails when

* any deterministic field differs — the fast path changed observable
  behaviour, which the design forbids; or
* the fast/legacy speedup (geomean over the timing corpus) regressed
  by more than the tolerance (default 15%).

Deterministic fields are compared exactly because they are exactly
reproducible.  Wall-clock numbers are *informational* — absolute
throughput depends on the host — so the gate uses the fast/legacy
*ratio*, which mostly cancels machine speed.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.benchsuite.programs import BENCHMARKS
from repro.config import CompilerConfig
from repro.pipeline import compile_source, run_compiled

SCHEMA_VERSION = 1

#: Benchmarks timed for the fast-vs-legacy throughput ratio: a spread
#: of call-intensive, continuation-heavy, allocation-heavy, and
#: arithmetic-heavy programs that runs in a few seconds total.
SPEED_CORPUS = ("tak", "takl", "fxtriang", "ctak", "destruct", "div-iter", "deriv")

#: Allowed relative regression of the geomean fast/legacy speedup.
DEFAULT_TOLERANCE = 0.15


def _mix(counters) -> Dict[str, int]:
    """Instruction-category mix derived from the counters.

    Deterministic (it is exact event counts, not sampling), so the
    baseline comparison checks it exactly.
    """
    return {
        "prim": counters.prim_calls,
        "mov": counters.moves,
        "branch": counters.branches,
        "call": counters.calls,
        "tailcall": counters.tail_calls,
        "callcc": counters.continuations_captured,
        "closure": counters.closure_allocs,
        "load": sum(counters.stack_reads.values()),
        "store": sum(counters.stack_writes.values()),
    }


def _time_run(compiled, vm_fast: bool, repeats: int) -> float:
    """Best-of-*repeats* wall time for one mode (after one warm run)."""
    run_compiled(compiled, vm_fast=vm_fast)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_compiled(compiled, vm_fast=vm_fast)
        best = min(best, time.perf_counter() - t0)
    return best


def benchmark_names() -> List[str]:
    """The baseline corpus: every non-heavy benchmark, sorted."""
    return sorted(n for n, b in BENCHMARKS.items() if not b.heavy)


def collect_baseline(
    names: Optional[Sequence[str]] = None,
    config: Optional[CompilerConfig] = None,
    repeats: int = 3,
    timing_names: Sequence[str] = SPEED_CORPUS,
    progress=None,
) -> Dict[str, Any]:
    """Measure the suite and return the ``BENCH_vm.json`` document."""
    config = config or CompilerConfig()
    names = list(names) if names is not None else benchmark_names()
    timing = set(timing_names)
    doc: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "timing_corpus": sorted(timing & set(names)),
        "benchmarks": {},
    }
    ratios = []
    for name in names:
        bench = BENCHMARKS[name]
        compiled = compile_source(bench.source, config)
        result = run_compiled(compiled, vm_fast=True)
        from repro.sexp.writer import write_datum

        c = result.counters
        entry: Dict[str, Any] = {
            "value": write_datum(result.value),
            "instructions": c.instructions,
            "cycles": c.cycles,
            "mix": _mix(c),
        }
        if name in timing:
            fast_s = _time_run(compiled, True, repeats)
            legacy_s = _time_run(compiled, False, repeats)
            entry["wall_s"] = round(fast_s, 4)
            entry["instructions_per_sec"] = round(c.instructions / fast_s)
            entry["speedup_vs_legacy"] = round(legacy_s / fast_s, 3)
            ratios.append(legacy_s / fast_s)
        doc["benchmarks"][name] = entry
        if progress is not None:
            progress(name, entry)
    if ratios:
        product = 1.0
        for r in ratios:
            product *= r
        doc["geomean_speedup"] = round(product ** (1.0 / len(ratios)), 3)
    return doc


def collect_warm_start(
    names: Optional[Sequence[str]] = None,
    config: Optional[CompilerConfig] = None,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Measure time-to-ready-to-execute under four start modes.

    For each benchmark, best-of-*repeats* seconds until the program
    could begin executing on the fast path (predecoded streams and
    trace tables built), starting from:

    * ``cold_s`` — nothing: full compile, predecode, blockcompile;
    * ``isa_ready_s`` — a warm ISA disk cache (objects tier): unpickle
      the compiled program, then predecode + blockcompile;
    * ``artifact_ready_s`` — a warm executable-artifact tier: one load
      installs the decoded streams and trace tables too;
    * ``aot_import_s`` — importing the AOT-emitted module (after the
      first repeat this includes Python's own bytecode cache, the
      realistic steady state).

    The numbers are wall-clock and host-dependent — ``BENCH_vm.json``
    records them as informational history, and the comparison gate
    ignores this section entirely.
    """
    import importlib.util
    import itertools
    import os
    import tempfile

    from repro.serve.cache import CompileCache
    from repro.vm.aotemit import emit_module
    from repro.vm.blockcompile import compile_blocks
    from repro.vm.predecode import predecode_code

    config = config or CompilerConfig()
    names = list(names) if names is not None else list(SPEED_CORPUS)

    def warm(compiled) -> None:
        cost_model = compiled.config.cost_model
        cp = compiled.regfile.cp.index
        for code in compiled.codes:
            predecode_code(code)
            if code.fast_blocks is None:
                compile_blocks(code, cost_model, cp)

    def best(fn) -> float:
        b = float("inf")
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            fn()
            b = min(b, time.perf_counter() - t0)
        return b

    doc: Dict[str, Any] = {
        "corpus": names,
        "repeats": repeats,
        "benchmarks": {},
    }
    totals = {
        "cold_s": 0.0,
        "isa_ready_s": 0.0,
        "artifact_ready_s": 0.0,
        "aot_import_s": 0.0,
    }
    serial = itertools.count()
    with tempfile.TemporaryDirectory(prefix="repro-warm-") as tmp:
        for seq, name in enumerate(names):
            source = BENCHMARKS[name].source

            def cold() -> None:
                warm(compile_source(source, config))

            # Fresh CompileCache instances per repeat: the memory LRU is
            # process-local, so every timed load comes off the disk tier
            # exactly as a new worker's first request would.
            isa_root = os.path.join(tmp, f"isa{seq}")
            CompileCache(root=isa_root, artifacts=False).compile(source, config)

            def isa_ready() -> None:
                compiled, hit = CompileCache(
                    root=isa_root, artifacts=False
                ).compile(source, config)
                assert hit
                warm(compiled)

            art_root = os.path.join(tmp, f"art{seq}")
            CompileCache(root=art_root).compile(source, config)

            def artifact_ready() -> None:
                compiled, hit = CompileCache(root=art_root).compile(
                    source, config
                )
                assert hit
                warm(compiled)

            module_path = os.path.join(tmp, f"aot{seq}.py")
            with open(module_path, "w") as handle:
                handle.write(emit_module(compile_source(source, config), name))

            def aot_import() -> None:
                spec = importlib.util.spec_from_file_location(
                    f"_repro_warm_{seq}_{next(serial)}", module_path
                )
                module = importlib.util.module_from_spec(spec)
                spec.loader.exec_module(module)

            entry = {
                "cold_s": round(best(cold), 4),
                "isa_ready_s": round(best(isa_ready), 4),
                "artifact_ready_s": round(best(artifact_ready), 4),
                "aot_import_s": round(best(aot_import), 4),
            }
            doc["benchmarks"][name] = entry
            for key in totals:
                totals[key] += entry[key]
    doc["totals"] = {key: round(value, 4) for key, value in totals.items()}
    return doc


def compare_baseline(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Return a list of regression descriptions (empty = gate passes)."""
    problems: List[str] = []
    if baseline.get("schema") != SCHEMA_VERSION:
        problems.append(
            f"baseline schema {baseline.get('schema')!r} != {SCHEMA_VERSION} "
            "(regenerate with: repro bench --baseline-out)"
        )
        return problems
    base_benches = baseline.get("benchmarks", {})
    cur_benches = current.get("benchmarks", {})
    for name, base in sorted(base_benches.items()):
        cur = cur_benches.get(name)
        if cur is None:
            problems.append(f"{name}: missing from current run")
            continue
        for field in ("value", "instructions", "cycles", "mix"):
            if cur.get(field) != base.get(field):
                problems.append(
                    f"{name}: {field} changed "
                    f"{base.get(field)!r} -> {cur.get(field)!r}"
                )
    base_geo = baseline.get("geomean_speedup")
    cur_geo = current.get("geomean_speedup")
    if base_geo and cur_geo:
        floor = base_geo * (1.0 - tolerance)
        if cur_geo < floor:
            problems.append(
                f"geomean fast/legacy speedup regressed: {cur_geo:.2f}x "
                f"< {floor:.2f}x (baseline {base_geo:.2f}x - {tolerance:.0%})"
            )
    return problems


def write_baseline(doc: Dict[str, Any], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)
