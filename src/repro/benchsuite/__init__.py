"""The benchmark suite: programs, runner, and table generators."""

from repro.benchsuite.programs import BENCHMARKS, Benchmark, get_benchmark
from repro.benchsuite.runner import BenchmarkRun, run_benchmark

__all__ = [
    "BENCHMARKS",
    "Benchmark",
    "get_benchmark",
    "BenchmarkRun",
    "run_benchmark",
]
