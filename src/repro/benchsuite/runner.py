"""Compile-run-validate machinery for the benchmark suite."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.benchsuite.programs import Benchmark, get_benchmark
from repro.config import CompilerConfig
from repro.interp.interpreter import Interpreter
from repro.pipeline import compile_source, run_compiled
from repro.sexp.writer import write_datum

_expected_cache: Dict[str, str] = {}

# Process-wide memory-only compile cache.  Sweeps (tables, the bench
# matrix, the test suite) recompile the same (program, config) pairs
# many times; keying on the cache collapses those to one compile each.
_compile_cache = None


def shared_compile_cache():
    """The process-wide in-memory compile cache (created on first use)."""
    global _compile_cache
    if _compile_cache is None:
        from repro.serve.cache import CompileCache

        _compile_cache = CompileCache(disk=False, memory_entries=512)
    return _compile_cache


class BenchmarkRun:
    """Results of one benchmark under one configuration."""

    def __init__(self, benchmark: Benchmark, config: CompilerConfig, result) -> None:
        self.benchmark = benchmark
        self.config = config
        self.result = result
        self.counters = result.counters
        self.classifier = result.classifier

    @property
    def value_text(self) -> str:
        return write_datum(self.result.value)

    @property
    def stack_refs(self) -> int:
        return self.counters.total_stack_refs

    @property
    def cycles(self) -> int:
        return self.counters.cycles

    def __repr__(self) -> str:
        return (
            f"<BenchmarkRun {self.benchmark.name} refs={self.stack_refs} "
            f"cycles={self.cycles}>"
        )


def expected_value(benchmark: Benchmark) -> Optional[str]:
    """The oracle value: either baked into the registry or computed
    once with the reference interpreter and cached."""
    if benchmark.expected is not None:
        return benchmark.expected
    if benchmark.name in _expected_cache:
        return _expected_cache[benchmark.name]
    try:
        value = Interpreter().run_source(benchmark.source)
    except RecursionError:  # pragma: no cover - interpreter depth limit
        return None
    text = write_datum(value)
    _expected_cache[benchmark.name] = text
    return text


def run_benchmark(
    name_or_bench,
    config: Optional[CompilerConfig] = None,
    validate: bool = True,
    debug: bool = False,
    tracer=None,
    profile: bool = False,
    cache: Optional[bool] = None,
) -> BenchmarkRun:
    """Compile and execute one benchmark, checking its value against
    the reference interpreter.

    Pass a ``repro.observe.Tracer`` to record per-phase compile spans
    (and, with ``profile=True``, a per-procedure VM profile on
    ``run.result.profile``).

    ``cache`` controls the process-wide compile cache: ``None`` (the
    default) uses it unless a recording tracer is attached — cached
    compiles would produce no compile spans — ``False`` always compiles
    fresh, ``True`` forces the cache.
    """
    bench = (
        name_or_bench
        if isinstance(name_or_bench, Benchmark)
        else get_benchmark(name_or_bench)
    )
    config = config or CompilerConfig()
    if cache is None:
        cache = not (tracer is not None and getattr(tracer, "enabled", False))
    if cache:
        compiled, _ = shared_compile_cache().compile(bench.source, config)
    else:
        compiled = compile_source(bench.source, config, tracer=tracer)
    result = run_compiled(compiled, debug=debug, tracer=tracer, profile=profile)
    if validate:
        expect = expected_value(bench)
        got = write_datum(result.value)
        if expect is not None and got != expect:
            raise AssertionError(
                f"{bench.name} under {config}: produced {got}, expected {expect}"
            )
    return BenchmarkRun(bench, config, result)


def classification_row(run: BenchmarkRun) -> Tuple[int, Dict[str, float]]:
    """Table 2 row: total activations and per-category fractions."""
    return run.classifier.total, run.classifier.fractions()
