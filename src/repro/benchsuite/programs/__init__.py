"""Benchmark registry.

The Gabriel benchmarks (Table 1 / Table 2 of the paper) rewritten in
the compiler's Scheme subset, plus two application-scale substitutes
for the paper's proprietary workloads (see DESIGN.md).  Inputs are
scaled down so a Python-hosted simulator finishes each run in seconds;
every entry records its scaling relative to the paper's version.
"""

from __future__ import annotations

from typing import Dict, List

from repro.benchsuite.programs import apps, gabriel, micro


class Benchmark:
    """One benchmark program.

    ``expected`` is the ``write``-rendering of the program's value,
    used to validate every configuration's run.
    """

    def __init__(
        self,
        name: str,
        source: str,
        expected: str,
        description: str,
        scaling: str = "unscaled",
        heavy: bool = False,
        paper: bool = True,
    ) -> None:
        self.name = name
        self.source = source
        self.expected = expected
        self.description = description
        self.scaling = scaling
        self.heavy = heavy
        # Whether the benchmark corresponds to a row of the paper's
        # tables (the Gabriel suite + application substitutes) or is a
        # local microbenchmark.
        self.paper = paper

    def __repr__(self) -> str:
        return f"<Benchmark {self.name}>"


BENCHMARKS: Dict[str, Benchmark] = {}


def _register(bench: Benchmark) -> None:
    assert bench.name not in BENCHMARKS, bench.name
    BENCHMARKS[bench.name] = bench


for _b in gabriel.all_benchmarks():
    _register(_b)
for _b in apps.all_benchmarks():
    _register(_b)
for _b in micro.all_benchmarks():
    _register(_b)


def get_benchmark(name: str) -> Benchmark:
    return BENCHMARKS[name]


def benchmark_names(include_heavy: bool = True) -> List[str]:
    return [
        name
        for name, b in BENCHMARKS.items()
        if include_heavy or not b.heavy
    ]
