"""The Gabriel benchmarks (paper Tables 1–3), in the compiler's subset.

Inputs are scaled down so that the Python-hosted VM finishes each run
in a few seconds; the ``scaling`` field of every benchmark records the
deviation from the original.  Each program is a straightforward port of
the classic Scheme version, restructured only where the subset requires
it (fixed arity, no ``apply``, property lists as association lists).
"""

from __future__ import annotations

from typing import List


def all_benchmarks() -> List["Benchmark"]:
    from repro.benchsuite.programs import Benchmark

    out = []
    for spec in _SPECS:
        out.append(Benchmark(**spec))
    return out


# ---------------------------------------------------------------------------
# tak family
# ---------------------------------------------------------------------------

TAK = """
(define (tak x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))))
(tak 18 12 6)
"""

FXTAK = """
(define (fxtak x y z)
  (if (not (fx< y x))
      z
      (fxtak (fxtak (fx- x 1) y z)
             (fxtak (fx- y 1) z x)
             (fxtak (fx- z 1) x y))))
(fxtak 18 12 6)
"""

TAKL = """
(define (listn n)
  (if (zero? n) '() (cons n (listn (- n 1)))))
(define (shorterp x y)
  (and (not (null? y))
       (or (null? x)
           (shorterp (cdr x) (cdr y)))))
(define (mas x y z)
  (if (not (shorterp y x))
      z
      (mas (mas (cdr x) y z)
           (mas (cdr y) z x)
           (mas (cdr z) x y))))
(mas (listn 16) (listn 10) (listn 5))
"""

CPSTAK = """
(define (cpstak x y z)
  (define (tak x y z k)
    (if (not (< y x))
        (k z)
        (tak (- x 1) y z
             (lambda (v1)
               (tak (- y 1) z x
                    (lambda (v2)
                      (tak (- z 1) x y
                           (lambda (v3)
                             (tak v1 v2 v3 k)))))))))
  (tak x y z (lambda (a) a)))
(cpstak 15 10 5)
"""

CTAK = """
(define (ctak x y z)
  (call/cc (lambda (k) (ctak-aux k x y z))))
(define (ctak-aux k x y z)
  (if (not (< y x))
      (k z)
      (call/cc
        (lambda (k2)
          (ctak-aux
            k2
            (call/cc (lambda (k3) (ctak-aux k3 (- x 1) y z)))
            (call/cc (lambda (k4) (ctak-aux k4 (- y 1) z x)))
            (call/cc (lambda (k5) (ctak-aux k5 (- z 1) x y))))))))
(ctak 12 8 4)
"""


def _takr_source(copies: int = 20) -> str:
    """tak spread over many mutually recursive copies (the original
    uses 100 copies to defeat the instruction cache)."""
    names = [f"tak{i}" for i in range(copies)]
    parts = []
    for i, name in enumerate(names):
        n1 = names[(3 * i + 1) % copies]
        n2 = names[(3 * i + 2) % copies]
        n3 = names[(3 * i + 3) % copies]
        n4 = names[(3 * i + 4) % copies]
        parts.append(
            f"(define ({name} x y z)\n"
            f"  (if (not (< y x))\n"
            f"      z\n"
            f"      ({n1} ({n2} (- x 1) y z)\n"
            f"            ({n3} (- y 1) z x)\n"
            f"            ({n4} (- z 1) x y))))"
        )
    parts.append("(tak0 14 10 4)")
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# deriv / dderiv
# ---------------------------------------------------------------------------

DERIV = """
(define (deriv-aux a) (list '/ (deriv a) a))
(define (deriv a)
  (cond
    ((atom? a) (if (eq? a 'x) 1 0))
    ((eq? (car a) '+) (cons '+ (map deriv (cdr a))))
    ((eq? (car a) '-) (cons '- (map deriv (cdr a))))
    ((eq? (car a) '*)
     (list '* a (cons '+ (map deriv-aux (cdr a)))))
    ((eq? (car a) '/)
     (list '-
           (list '/ (deriv (cadr a)) (caddr a))
           (list '/ (cadr a)
                 (list '* (caddr a) (caddr a) (deriv (caddr a))))))
    (else 'error)))
(define (deriv-run n)
  (let loop ((i n) (last '()))
    (if (zero? i)
        last
        (loop (- i 1)
              (deriv '(+ (* 3 x x) (* a x x) (* b x) 5))))))
(deriv-run 300)
"""

DDERIV = """
(define derivations '())
(define (put-deriv name f)
  (set! derivations (cons (cons name f) derivations)))
(define (get-deriv name)
  (let ((hit (assq name derivations)))
    (if hit (cdr hit) #f)))
(define (dderiv-aux a) (list '/ (dderiv a) a))
(define (dderiv a)
  (if (atom? a)
      (if (eq? a 'x) 1 0)
      (let ((f (get-deriv (car a))))
        (if f (f a) 'error))))
(define (dderiv-run n)
  (put-deriv '+ (lambda (a) (cons '+ (map dderiv (cdr a)))))
  (put-deriv '- (lambda (a) (cons '- (map dderiv (cdr a)))))
  (put-deriv '* (lambda (a) (list '* a (cons '+ (map dderiv-aux (cdr a))))))
  (put-deriv '/ (lambda (a)
                  (list '-
                        (list '/ (dderiv (cadr a)) (caddr a))
                        (list '/ (cadr a)
                              (list '* (caddr a) (caddr a)
                                    (dderiv (caddr a)))))))
  (let loop ((i n) (last '()))
    (if (zero? i)
        last
        (loop (- i 1)
              (dderiv '(+ (* 3 x x) (* a x x) (* b x) 5))))))
(dderiv-run 300)
"""

# ---------------------------------------------------------------------------
# destruct / div
# ---------------------------------------------------------------------------

DESTRUCT = """
(define (append-to-tail! x y)
  (if (null? x)
      y
      (let loop ((a x) (b (cdr x)))
        (if (null? b)
            (begin (set-cdr! a y) x)
            (loop b (cdr b))))))
(define (destructive n m)
  (let ((l (do ((i 10 (- i 1)) (a '() (cons '() a)))
               ((= i 0) a))))
    (do ((i n (- i 1)))
        ((= i 0) l)
      (cond ((null? (car l))
             (do ((l l (cdr l)))
                 ((null? l))
               (if (null? (car l)) (set-car! l (cons '() '())))
               (append-to-tail! (car l)
                                (do ((j m (- j 1)) (a '() (cons '() a)))
                                    ((= j 0) a)))))
            (else
             (do ((l1 l (cdr l1)) (l2 (cdr l) (cdr l2)))
                 ((null? l2))
               (set-cdr! (do ((j (quotient (length (car l2)) 2) (- j 1))
                              (a (car l2) (cdr a)))
                             ((zero? j) a)
                           (set-car! a i))
                         (let ((n (quotient (length (car l1)) 2)))
                           (cond ((= n 0)
                                  (set-car! l1 '())
                                  (car l1))
                                 (else
                                  (do ((j n (- j 1)) (a (car l1) (cdr a)))
                                      ((= j 1)
                                       (let ((x (cdr a)))
                                         (set-cdr! a '())
                                         x))
                                    '())))))))))
    (length (car (last-pair l)))))
(destructive 600 50)
"""

DIV_ITER = """
(define (create-n n)
  (do ((n n (- n 1)) (a '() (cons '() a)))
      ((= n 0) a)))
(define (iterative-div2 l)
  (do ((l l (cddr l)) (a '() (cons (car l) a)))
      ((null? l) a)))
(define (div-iter-run outer size)
  (let ((ll (create-n size)))
    (let loop ((i outer) (result '()))
      (if (zero? i)
          (length result)
          (loop (- i 1) (iterative-div2 ll))))))
(div-iter-run 400 200)
"""

DIV_REC = """
(define (create-n n)
  (do ((n n (- n 1)) (a '() (cons '() a)))
      ((= n 0) a)))
(define (recursive-div2 l)
  (if (null? l)
      '()
      (cons (car l) (recursive-div2 (cddr l)))))
(define (div-rec-run outer size)
  (let ((ll (create-n size)))
    (let loop ((i outer) (result '()))
      (if (zero? i)
          (length result)
          (loop (- i 1) (recursive-div2 ll))))))
(div-rec-run 400 200)
"""

# ---------------------------------------------------------------------------
# browse
# ---------------------------------------------------------------------------

BROWSE = """
(define *properties* '())
(define (get-prop sym prop)
  (let ((cell (assq sym *properties*)))
    (if cell
        (let ((hit (assq prop (cdr cell))))
          (if hit (cdr hit) #f))
        #f)))
(define (put-prop sym prop val)
  (let ((cell (assq sym *properties*)))
    (if cell
        (let ((hit (assq prop (cdr cell))))
          (if hit
              (set-cdr! hit val)
              (set-cdr! cell (cons (cons prop val) (cdr cell)))))
        (set! *properties*
              (cons (cons sym (cons (cons prop val) '())) *properties*)))))

(define *rand* 21)
(define (init-rand) (set! *rand* 21))
(define (next-rand)
  (set! *rand* (remainder (* *rand* 17) 251))
  *rand*)

(define *symbol-count* 0)
(define (generate-symbol)
  (set! *symbol-count* (+ *symbol-count* 1))
  (string->symbol (string-append "g" (number->string *symbol-count*))))

(define (match pat dat alist)
  (cond ((null? pat) (null? dat))
        ((null? dat) #f)
        ((or (eq? (car pat) '?) (eq? (car pat) (car dat)))
         (match (cdr pat) (cdr dat) alist))
        ((eq? (car pat) '*)
         (or (match (cdr pat) dat alist)
             (match (cdr pat) (cdr dat) alist)
             (match pat (cdr dat) alist)))
        ((atom? (car pat))
         (if (atom? (car dat))
             #f
             (match (cdr pat) (cdr dat) alist)))
        ((and (not (atom? (car pat))) (not (atom? (car dat))))
         (and (match (car pat) (car dat) alist)
              (match (cdr pat) (cdr dat) alist)))
        (else #f)))

(define (init-database n m npats ipats)
  (let loop ((n n) (acc '()))
    (if (zero? n)
        acc
        (let ((name (generate-symbol)))
          (put-prop name 'pattern
            (let inner ((i npats) (pats ipats) (acc '()))
              (if (zero? i)
                  acc
                  (inner (- i 1)
                         (if (null? (cdr pats)) ipats (cdr pats))
                         (cons (car pats) acc)))))
          (let fill ((i (remainder (next-rand) m)) (acc2 '()))
            (if (zero? i)
                (put-prop name 'filler acc2)
                (fill (- i 1) (cons '(a b) acc2))))
          (loop (- n 1) (cons name acc))))))

(define (browse-run)
  (init-rand)
  (let ((patterns '((a a a b b b b a a a a a b b a a a)
                    (a a b b b b a a (a a) (b b))
                    (a a a b (b a) b a b a)))
        (db (init-database 40 8 4
                           '((a a b b (a a) (b b))
                             (? ? * (b a) * ? ?)
                             (a (? ?) b * a)))))
    (let loop ((ps patterns) (hits 0))
      (if (null? ps)
          hits
          (loop (cdr ps)
                (+ hits
                   (fold-left
                     (lambda (acc name)
                       (fold-left
                         (lambda (acc2 pat)
                           (if (match (car ps) pat '()) (+ acc2 1) acc2))
                         acc
                         (get-prop name 'pattern)))
                     0
                     db)))))))
(browse-run)
"""

# ---------------------------------------------------------------------------
# boyer (reduced rule set, same algorithm)
# ---------------------------------------------------------------------------

BOYER = """
(define *rules* '())
(define (get-rules op)
  (let ((hit (assq op *rules*)))
    (if hit (cdr hit) '())))
(define (add-lemma term)
  (let ((op (car (cadr term))))
    (let ((hit (assq op *rules*)))
      (if hit
          (set-cdr! hit (cons term (cdr hit)))
          (set! *rules* (cons (cons op (cons term '())) *rules*))))))

(define unify-subst '())

(define (one-way-unify term1 term2)
  (set! unify-subst '())
  (one-way-unify1 term1 term2))
(define (one-way-unify1 term1 term2)
  (cond ((atom? term2)
         (let ((temp (assq term2 unify-subst)))
           (cond (temp (equal? term1 (cdr temp)))
                 (else
                  (set! unify-subst (cons (cons term2 term1) unify-subst))
                  #t))))
        ((atom? term1) #f)
        ((eq? (car term1) (car term2))
         (one-way-unify1-lst (cdr term1) (cdr term2)))
        (else #f)))
(define (one-way-unify1-lst lst1 lst2)
  (cond ((null? lst1) (null? lst2))
        ((null? lst2) #f)
        ((one-way-unify1 (car lst1) (car lst2))
         (one-way-unify1-lst (cdr lst1) (cdr lst2)))
        (else #f)))

(define (apply-subst alist term)
  (cond ((atom? term)
         (let ((temp (assq term alist)))
           (if temp (cdr temp) term)))
        (else (cons (car term) (apply-subst-lst alist (cdr term))))))
(define (apply-subst-lst alist lst)
  (if (null? lst)
      '()
      (cons (apply-subst alist (car lst))
            (apply-subst-lst alist (cdr lst)))))

(define (rewrite term)
  (cond ((atom? term) term)
        (else
         (rewrite-with-lemmas
           (cons (car term) (rewrite-args (cdr term)))
           (get-rules (car term))))))
(define (rewrite-args lst)
  (if (null? lst)
      '()
      (cons (rewrite (car lst)) (rewrite-args (cdr lst)))))
(define (rewrite-with-lemmas term lst)
  (cond ((null? lst) term)
        ((one-way-unify term (cadr (car lst)))
         (rewrite (apply-subst unify-subst (caddr (car lst)))))
        (else (rewrite-with-lemmas term (cdr lst)))))

(define (truep x lst)
  (or (equal? x '(t)) (member x lst)))
(define (falsep x lst)
  (or (equal? x '(f)) (member x lst)))

(define (tautologyp x true-lst false-lst)
  (cond ((truep x true-lst) #t)
        ((falsep x false-lst) #f)
        ((atom? x) #f)
        ((eq? (car x) 'if)
         (cond ((truep (cadr x) true-lst)
                (tautologyp (caddr x) true-lst false-lst))
               ((falsep (cadr x) false-lst)
                (tautologyp (cadddr x) true-lst false-lst))
               (else
                (and (tautologyp (caddr x)
                                 (cons (cadr x) true-lst)
                                 false-lst)
                     (tautologyp (cadddr x)
                                 true-lst
                                 (cons (cadr x) false-lst))))))
        (else #f)))

(define (tautp x) (tautologyp (rewrite x) '() '()))

(define (setup)
  (add-lemma '(equal (compile form)
                     (reverse (codegen (optimize form) (nil)))))
  (add-lemma '(equal (eqp x y) (equal (fix x) (fix y))))
  (add-lemma '(equal (greaterp x y) (lessp y x)))
  (add-lemma '(equal (lesseqp x y) (not (lessp y x))))
  (add-lemma '(equal (greatereqp x y) (not (lessp x y))))
  (add-lemma '(equal (boolean x) (or (equal x (t)) (equal x (f)))))
  (add-lemma '(equal (iff x y) (and (implies x y) (implies y x))))
  (add-lemma '(equal (even1 x) (if (zerop x) (t) (odd (sub1 x)))))
  (add-lemma '(equal (countps- l pred) (countps-loop l pred (zero))))
  (add-lemma '(equal (fact- i) (fact-loop i 1)))
  (add-lemma '(equal (reverse- x) (reverse-loop x (nil))))
  (add-lemma '(equal (divides x y) (zerop (remainder y x))))
  (add-lemma '(equal (assume-true var alist) (cons (cons var (t)) alist)))
  (add-lemma '(equal (assume-false var alist) (cons (cons var (f)) alist)))
  (add-lemma '(equal (tautology-checker x) (tautologyp (normalize x) (nil))))
  (add-lemma '(equal (falsify x) (falsify1 (normalize x) (nil))))
  (add-lemma '(equal (prime x) (and (not (zerop x))
                                    (not (equal x (add1 (zero))))
                                    (prime1 x (sub1 x)))))
  (add-lemma '(equal (and p q) (if p (if q (t) (f)) (f))))
  (add-lemma '(equal (or p q) (if p (t) (if q (t) (f)))))
  (add-lemma '(equal (not p) (if p (f) (t))))
  (add-lemma '(equal (implies p q) (if p (if q (t) (f)) (t))))
  (add-lemma '(equal (plus (plus x y) z) (plus x (plus y z))))
  (add-lemma '(equal (equal (plus a b) (zero)) (and (zerop a) (zerop b))))
  (add-lemma '(equal (difference x x) (zero)))
  (add-lemma '(equal (equal (plus a b) (plus a c)) (equal b c)))
  (add-lemma '(equal (equal (zero) (difference x y)) (not (lessp y x))))
  (add-lemma '(equal (equal x (difference x y))
                     (and (numberp x) (or (equal x (zero)) (zerop y)))))
  (add-lemma '(equal (equal (times a b) (zero)) (or (zerop a) (zerop b))))
  (add-lemma '(equal (lessp (remainder x y) y) (not (zerop y))))
  (add-lemma '(equal (remainder x x) (zero)))
  (add-lemma '(equal (times x (plus y z)) (plus (times x y) (times x z))))
  (add-lemma '(equal (times (times x y) z) (times x (times y z))))
  (add-lemma '(equal (equal (times x y) (zero)) (or (zerop x) (zerop y))))
  (add-lemma '(equal (length (reverse x)) (length x)))
  (add-lemma '(equal (member x (append a b)) (or (member x a) (member x b))))
  (add-lemma '(equal (member x (reverse y)) (member x y)))
  (add-lemma '(equal (nth (zero) i) (zero)))
  (add-lemma '(equal (exp i (plus j k)) (times (exp i j) (exp i k))))
  (add-lemma '(equal (flatten (cdr (gopher x)))
                     (if (listp x) (cdr (flatten x)) (cons (zero) (nil))))))

(define (boyer-test)
  (tautp
    (apply-subst
      '((x f (plus (plus a b) (plus c (zero))))
        (y f (times (times a b) (plus c d)))
        (z f (reverse (append (append a b) (nil))))
        (u equal (plus a b) (difference x y))
        (w lessp (remainder a b) (member a (length b))))
      '(implies (and (implies x y)
                     (and (implies y z)
                          (and (implies z u) (implies u w))))
                (implies x w)))))

(define (boyer-run n)
  (setup)
  (let loop ((i n) (r #f))
    (if (zero? i) r (loop (- i 1) (boyer-test)))))
(boyer-run 3)
"""

# ---------------------------------------------------------------------------
# puzzle (reduced board, same code structure)
# ---------------------------------------------------------------------------

PUZZLE = """
(define size 131)
(define classmax 3)
(define typemax 12)

(define *iii* 0)
(define *kount* 0)
(define *d* 5)

(define piececount (make-vector (+ classmax 1) 0))
(define class (make-vector (+ typemax 1) 0))
(define piecemax (make-vector (+ typemax 1) 0))
(define puzzle (make-vector (+ size 140) #t))
(define p (make-vector (+ typemax 1) #f))

(define (fit i j)
  (let ((end (vector-ref piecemax i)))
    (let loop ((k 0))
      (cond ((> k end) #t)
            ((and (vector-ref (vector-ref p i) k)
                  (vector-ref puzzle (+ j k)))
             #f)
            (else (loop (+ k 1)))))))

(define (place i j)
  (let ((end (vector-ref piecemax i)))
    (do ((k 0 (+ k 1)))
        ((> k end))
      (if (vector-ref (vector-ref p i) k)
          (vector-set! puzzle (+ j k) #t)))
    (vector-set! piececount (vector-ref class i)
                 (- (vector-ref piececount (vector-ref class i)) 1))
    (let loop ((k j))
      (cond ((> k size) (set! *iii* 0) 0)
            ((vector-ref puzzle k) (loop (+ k 1)))
            (else (set! *iii* k) k)))))

(define (puzzle-remove i j)
  (let ((end (vector-ref piecemax i)))
    (do ((k 0 (+ k 1)))
        ((> k end))
      (if (vector-ref (vector-ref p i) k)
          (vector-set! puzzle (+ j k) #f)))
    (vector-set! piececount (vector-ref class i)
                 (+ (vector-ref piececount (vector-ref class i)) 1))))

(define (trial j)
  (let ((k 0))
    (call/cc
      (lambda (return)
        (do ((i 0 (+ i 1)))
            ((> i typemax) (set! *kount* (+ *kount* 1)) (return #f))
          (if (not (zero? (vector-ref piececount (vector-ref class i))))
              (if (fit i j)
                  (begin
                    (set! k (place i j))
                    (if (or (trial k) (zero? k))
                        (begin
                          (set! *kount* (+ *kount* 1))
                          (return #t))
                        (puzzle-remove i j))))))))))

(define (definepiece iclass ii jj kk)
  (let ((index 0))
    (do ((i 0 (+ i 1)))
        ((> i ii))
      (do ((j 0 (+ j 1)))
          ((> j jj))
        (do ((k 0 (+ k 1)))
            ((> k kk))
          (set! index (+ i (* *d* (+ j (* *d* k)))))
          (vector-set! (vector-ref p *iii*) index #t))))
    (vector-set! class *iii* iclass)
    (vector-set! piecemax *iii* index)
    (if (not (= *iii* typemax))
        (set! *iii* (+ *iii* 1)))))

(define (start)
  (do ((m 0 (+ m 1)))
      ((> m size))
    (vector-set! puzzle m #t))
  (do ((i 1 (+ i 1)))
      ((> i 4))
    (do ((j 1 (+ j 1)))
        ((> j 4))
      (do ((k 1 (+ k 1)))
          ((> k 4))
        (vector-set! puzzle (+ i (* *d* (+ j (* *d* k)))) #f))))
  (do ((i 0 (+ i 1)))
      ((> i typemax))
    (vector-set! p i (make-vector (+ size 1) #f)))
  (do ((i 0 (+ i 1)))
      ((> i classmax))
    (vector-set! piececount i 0))
  (set! *iii* 0)
  (definepiece 0 3 1 0)
  (definepiece 0 1 0 3)
  (definepiece 0 0 3 1)
  (definepiece 0 1 3 0)
  (definepiece 0 3 0 1)
  (definepiece 0 0 1 3)
  (definepiece 1 1 0 0)
  (definepiece 1 0 1 0)
  (definepiece 1 0 0 1)
  (definepiece 2 1 1 0)
  (definepiece 2 1 0 1)
  (definepiece 2 0 1 1)
  (definepiece 3 1 1 1)
  (vector-set! piececount 0 6)
  (vector-set! piececount 1 4)
  (vector-set! piececount 2 1)
  (vector-set! piececount 3 1)
  (let ((n (+ 1 (* *d* (+ 1 *d*)))))
    (if (fit 0 n)
        (set! n (place 0 n))
        (display "error"))
    (if (trial n)
        *kount*
        (- 0 *kount*))))
(start)
"""

# ---------------------------------------------------------------------------
# triang (fuel-limited search, same code)
# ---------------------------------------------------------------------------

TRIANG = """
(define board (make-vector 16 1))
(define sequence (make-vector 14 0))
(define a '#(1 2 4 3 5 6 1 3 6 2 5 4 11 12 13 7 8 4 4 7 11 8 12 13 6 10
             15 9 14 13 13 14 15 9 10 6 6))
(define b '#(2 4 7 5 8 9 3 6 10 5 9 8 12 13 14 8 9 5 2 4 7 5 8 9 3 6 10
             5 9 8 12 13 14 8 9 5 5))
(define c '#(4 7 11 8 12 13 6 10 15 9 14 13 13 14 15 9 10 6 1 2 4 3 5 6 1
             3 6 2 5 4 11 12 13 7 8 4 4))
(define *answer* 0)
(define *final* 0)
(define *fuel* 45000)

(define (attempt i depth)
  (set! *fuel* (- *fuel* 1))
  (cond ((< *fuel* 0) #f)
        ((= depth 14)
         (set! *answer* (+ *answer* 1))
         #f)
        ((and (= 1 (vector-ref board (vector-ref a i)))
              (= 1 (vector-ref board (vector-ref b i)))
              (= 0 (vector-ref board (vector-ref c i))))
         (vector-set! board (vector-ref a i) 0)
         (vector-set! board (vector-ref b i) 0)
         (vector-set! board (vector-ref c i) 1)
         (vector-set! sequence depth i)
         (do ((j 0 (+ j 1)))
             ((or (= j 36) (= depth 13)) #f)
           (attempt j (+ depth 1)))
         (vector-set! board (vector-ref a i) 1)
         (vector-set! board (vector-ref b i) 1)
         (vector-set! board (vector-ref c i) 0)
         (set! *final* (+ *final* 1))
         #f)
        (else #f)))

(define (triang-run)
  (vector-set! board 5 0)
  (do ((i 0 (+ i 1)))
      ((= i 36))
    (attempt i 0))
  (list *answer* *final*))
(triang-run)
"""

# ---------------------------------------------------------------------------
# fft
# ---------------------------------------------------------------------------

FFT = """
(define *pi* 3.141592653589793)

(define (fft areal aimag)
  (let ((n (- (vector-length areal) 1)))
    (let ((nv2 (quotient n 2)) (m 0))
      ;; compute m = log2 n
      (let loop ((i 1))
        (if (< i n)
            (begin (set! m (+ m 1)) (loop (* i 2)))))
      ;; bit-reversal permutation
      (let ((j 1))
        (do ((i 1 (+ i 1)))
            ((>= i n))
          (if (< i j)
              (let ((tr (vector-ref areal j)) (ti (vector-ref aimag j)))
                (vector-set! areal j (vector-ref areal i))
                (vector-set! aimag j (vector-ref aimag i))
                (vector-set! areal i tr)
                (vector-set! aimag i ti)))
          (let dec ((k nv2))
            (if (< k j)
                (begin (set! j (- j k)) (dec (quotient k 2)))
                (set! j (+ j k))))))
      ;; butterflies
      (let loop ((le 2))
        (if (<= le n)
            (let ((le1 (quotient le 2)))
              (let ((ur (vector 1.0)) (ui (vector 0.0))
                    (wr (cos (/ *pi* le1)))
                    (wi (- 0.0 (sin (/ *pi* le1)))))
                (do ((j 1 (+ j 1)))
                    ((> j le1))
                  (do ((i j (+ i le)))
                      ((> i n))
                    (let ((ip (+ i le1)))
                      (let ((tr (- (* (vector-ref areal ip) (vector-ref ur 0))
                                   (* (vector-ref aimag ip) (vector-ref ui 0))))
                            (ti (+ (* (vector-ref areal ip) (vector-ref ui 0))
                                   (* (vector-ref aimag ip) (vector-ref ur 0)))))
                        (vector-set! areal ip (- (vector-ref areal i) tr))
                        (vector-set! aimag ip (- (vector-ref aimag i) ti))
                        (vector-set! areal i (+ (vector-ref areal i) tr))
                        (vector-set! aimag i (+ (vector-ref aimag i) ti)))))
                  (let ((saved (vector-ref ur 0)))
                    (vector-set! ur 0 (- (* saved wr) (* (vector-ref ui 0) wi)))
                    (vector-set! ui 0 (+ (* saved wi) (* (vector-ref ui 0) wr))))))
              (loop (* le 2))))))
    areal))

(define (fft-run times n)
  (let ((re (make-vector (+ n 1) 0.0))
        (im (make-vector (+ n 1) 0.0)))
    (let loop ((t times) (checksum 0.0))
      (if (zero? t)
          (inexact->exact (floor (* 1000.0 checksum)))
          (begin
            (do ((i 1 (+ i 1)))
                ((> i n))
              (vector-set! re i (exact->inexact (remainder (* i 7) 10)))
              (vector-set! im i 0.0))
            (fft re im)
            (loop (- t 1)
                  (+ checksum (abs (vector-ref re 3)))))))))
(fft-run 4 64)
"""

# ---------------------------------------------------------------------------
# printer / reader benchmarks (string-port substitutes, see DESIGN.md)
# ---------------------------------------------------------------------------

FPRINT = """
(define test-datum
  '(define (compiler x)
     (cond ((atom? x) (list 'const x))
           ((eq? (car x) 'lambda) (list 'closure (cadr x) (caddr x)))
           (else (cons 'call (map compiler x)))
           (1 2 3 4 5 6 7 8 9 10 (a b c (d e (f g))) "done"))))

(define (write-datum x)
  (cond ((null? x) "()")
        ((pair? x) (string-append "(" (write-tail x)))
        ((symbol? x) (symbol->string x))
        ((number? x) (number->string x))
        ((string? x) (string-append "\\"" (string-append x "\\"")))
        ((eq? x #t) "#t")
        ((eq? x #f) "#f")
        (else "#<other>")))
(define (write-tail x)
  (cond ((null? x) ")")
        ((and (pair? x) (null? (cdr x)))
         (string-append (write-datum (car x)) ")"))
        ((pair? x)
         (string-append (write-datum (car x))
                        (string-append " " (write-tail (cdr x)))))
        (else (string-append ". " (string-append (write-datum x) ")")))))

(define (fprint-run n)
  (let loop ((i n) (len 0))
    (if (zero? i)
        len
        (loop (- i 1) (string-length (write-datum test-datum))))))
(fprint-run 60)
"""

FREAD = """
(define input
  "(define (foo x y) (cons x (list 12 34 (bar (baz x 99)) (quux) y)))")

(define (skip-spaces s i)
  (if (and (< i (string-length s))
           (char=? (string-ref s i) #\\space))
      (skip-spaces s (+ i 1))
      i))

(define (read-atom s i)
  (let loop ((j i))
    (if (or (>= j (string-length s))
            (char=? (string-ref s j) #\\space)
            (char=? (string-ref s j) #\\()
            (char=? (string-ref s j) #\\)))
        (cons (string->symbol (substring s i j)) j)
        (loop (+ j 1)))))

(define (read-list s i)
  (let ((i (skip-spaces s i)))
    (if (char=? (string-ref s i) #\\))
        (cons '() (+ i 1))
        (let ((first (read-expr s i)))
          (let ((rest (read-list s (cdr first))))
            (cons (cons (car first) (car rest)) (cdr rest)))))))

(define (read-expr s i)
  (let ((i (skip-spaces s i)))
    (if (char=? (string-ref s i) #\\()
        (read-list s (+ i 1))
        (read-atom s i))))

(define (count-atoms x)
  (cond ((null? x) 0)
        ((pair? x) (+ (count-atoms (car x)) (count-atoms (cdr x))))
        (else 1)))

(define (fread-run n)
  (let loop ((i n) (count 0))
    (if (zero? i)
        count
        (loop (- i 1) (count-atoms (car (read-expr input 0)))))))
(fread-run 40)
"""

TPRINT = """
(define test-datum
  '((a b c d e f g h i j k l m)
    (1 2 3 4 5 6 7 8 9 10 11 12 13)
    (a 1 b 2 c 3 d 4 e 5 f 6)
    ("one" "two" "three")
    (#t #f #t #f)))

(define (tprint-run n)
  (let loop ((i n))
    (if (zero? i)
        'done
        (begin
          (for-each (lambda (row) (display row) (newline)) test-datum)
          (loop (- i 1))))))
(tprint-run 120)
"""

# ---------------------------------------------------------------------------
# fxtriang: triang with explicit fixnum operators
# ---------------------------------------------------------------------------

FXTRIANG = TRIANG.replace("(+ ", "(fx+ ").replace("(- ", "(fx- ").replace(
    "(= ", "(fx= ").replace("(< ", "(fx< ")

# ---------------------------------------------------------------------------
# traverse
# ---------------------------------------------------------------------------

TRAVERSE = """
;; Nodes are 6-slot vectors: 0 mark, 1 id, 2 sons, 3 parents, 4 entry, 5 extra
(define *count* 0)
(define *marker* 0)
(define *root* '())

(define (make-node id)
  (let ((v (make-vector 6 0)))
    (vector-set! v 0 #f)
    (vector-set! v 1 id)
    (vector-set! v 2 '())
    (vector-set! v 3 '())
    v))

(define *rand* 21)
(define (next-rand n)
  (set! *rand* (remainder (+ (* *rand* 17) 7) 251))
  (remainder *rand* n))

(define (create-structure n)
  (let ((nodes (make-vector n #f)))
    (do ((i 0 (+ i 1)))
        ((= i n))
      (vector-set! nodes i (make-node i)))
    ;; connect each node to a handful of pseudo-random others
    (do ((i 0 (+ i 1)))
        ((= i n))
      (do ((j 0 (+ j 1)))
          ((= j 3))
        (let ((target (vector-ref nodes (next-rand n)))
              (node (vector-ref nodes i)))
          (vector-set! node 2 (cons target (vector-ref node 2)))
          (vector-set! target 3 (cons node (vector-ref target 3))))))
    (vector-ref nodes 0)))

(define (traverse-node node mark)
  (if (eqv? (vector-ref node 0) mark)
      0
      (begin
        (vector-set! node 0 mark)
        (set! *count* (+ *count* 1))
        (fold-left (lambda (acc son) (+ acc (traverse-node son mark)))
                   1
                   (vector-ref node 2)))))

(define (traverse-init-run n)
  (set! *root* (create-structure n))
  (vector-ref *root* 1))

(define (traverse-run iters)
  (set! *count* 0)
  (let loop ((i iters))
    (if (zero? i)
        *count*
        (begin
          (set! *marker* (+ *marker* 1))
          (traverse-node *root* *marker*)
          (loop (- i 1))))))

(traverse-init-run 120)
(traverse-run 60)
"""

TRAVERSE_INIT = """
;; Just the structure-creation half of traverse.
(define (make-node id)
  (let ((v (make-vector 6 0)))
    (vector-set! v 0 #f)
    (vector-set! v 1 id)
    (vector-set! v 2 '())
    (vector-set! v 3 '())
    v))

(define *rand* 21)
(define (next-rand n)
  (set! *rand* (remainder (+ (* *rand* 17) 7) 251))
  (remainder *rand* n))

(define (create-structure n)
  (let ((nodes (make-vector n #f)))
    (do ((i 0 (+ i 1)))
        ((= i n))
      (vector-set! nodes i (make-node i)))
    (do ((i 0 (+ i 1)))
        ((= i n))
      (do ((j 0 (+ j 1)))
          ((= j 3))
        (let ((target (vector-ref nodes (next-rand n)))
              (node (vector-ref nodes i)))
          (vector-set! node 2 (cons target (vector-ref node 2)))
          (vector-set! target 3 (cons node (vector-ref target 3))))))
    n))

(define (init-run times n)
  (let loop ((i times) (total 0))
    (if (zero? i)
        total
        (loop (- i 1) (+ total (create-structure n))))))
(init-run 12 100)
"""


_SPECS = [
    dict(
        name="tak",
        source=TAK,
        expected="7",
        description="Gabriel tak(18,12,6): call-intensive, effective-leaf heavy",
        scaling="unscaled",
    ),
    dict(
        name="fxtak",
        source=FXTAK,
        expected="7",
        description="tak with explicit fixnum operators",
        scaling="unscaled",
    ),
    dict(
        name="takl",
        source=TAKL,
        expected=None,
        description="tak on unary (list) numbers",
        scaling="(16 10 5) instead of (18 12 6)",
    ),
    dict(
        name="takr",
        source=_takr_source(),
        expected=None,
        description="tak over 20 mutually recursive copies (cache-buster)",
        scaling="20 copies of (14 10 4) instead of 100 copies of (18 12 6)",
    ),
    dict(
        name="cpstak",
        source=CPSTAK,
        expected=None,
        description="tak in continuation-passing style (closure-heavy)",
        scaling="(15 10 5) instead of (18 12 6)",
    ),
    dict(
        name="ctak",
        source=CTAK,
        expected=None,
        description="tak via call/cc at every call",
        scaling="(12 8 4) instead of (18 12 6)",
        heavy=True,
    ),
    dict(
        name="deriv",
        source=DERIV,
        expected=None,
        description="symbolic differentiation",
        scaling="300 iterations instead of 5000",
    ),
    dict(
        name="dderiv",
        source=DDERIV,
        expected=None,
        description="table-driven symbolic differentiation",
        scaling="300 iterations instead of 5000",
    ),
    dict(
        name="destruct",
        source=DESTRUCT,
        expected=None,
        description="destructive list surgery (set-car!/set-cdr!)",
        scaling="600x50 instead of 600x50x(outer repeat)",
    ),
    dict(
        name="div-iter",
        source=DIV_ITER,
        expected="100",
        description="iterative list halving",
        scaling="400 iterations on a 200-list",
    ),
    dict(
        name="div-rec",
        source=DIV_REC,
        expected="100",
        description="recursive list halving",
        scaling="400 iterations on a 200-list",
    ),
    dict(
        name="browse",
        source=BROWSE,
        expected=None,
        description="AI-database pattern matching on property lists",
        scaling="40 units instead of 100; fewer iterations",
    ),
    dict(
        name="boyer",
        source=BOYER,
        expected=None,
        description="Boyer rewrite-based tautology checker",
        scaling="~40 of the 106 lemmas; 3 repeats",
    ),
    dict(
        name="puzzle",
        source=PUZZLE,
        expected=None,
        description="Baskett's 3-D packing puzzle",
        scaling="5x5x5 board with 4x4x4 cavity and a reduced piece set (original is 8x8x8 with 4 classes)",
    ),
    dict(
        name="triang",
        source=TRIANG,
        expected=None,
        description="triangular peg-board solitaire search",
        scaling="fuel-limited to 45k descents (original explores fully)",
        heavy=True,
    ),
    dict(
        name="fxtriang",
        source=FXTRIANG,
        expected=None,
        description="triang with explicit fixnum operators",
        scaling="fuel-limited to 45k descents",
        heavy=True,
    ),
    dict(
        name="fft",
        source=FFT,
        expected=None,
        description="64-point complex FFT over flonum vectors",
        scaling="4 x 64-point instead of 10 x 1024-point",
    ),
    dict(
        name="fprint",
        source=FPRINT,
        expected=None,
        description="datum printer into strings (file-print substitute)",
        scaling="in-memory strings instead of file I/O",
    ),
    dict(
        name="fread",
        source=FREAD,
        expected=None,
        description="s-expression reader over a string (file-read substitute)",
        scaling="in-memory string instead of file I/O",
    ),
    dict(
        name="tprint",
        source=TPRINT,
        expected=None,
        description="terminal printing via the output port",
        scaling="120 repetitions into an in-memory port",
    ),
    dict(
        name="traverse-init",
        source=TRAVERSE_INIT,
        expected=None,
        description="graph-structure creation",
        scaling="100-node graphs, 12 repeats",
    ),
    dict(
        name="traverse",
        source=TRAVERSE,
        expected=None,
        description="marked graph traversal",
        scaling="120-node graph, 60 traversals",
    ),
]
