"""Application-scale benchmark substitutes.

The paper's four large benchmarks (Chez recompiling itself, DDD,
Similix, SoftScheme) are proprietary or unavailable; these two programs
stand in for them (see DESIGN.md): like the originals they are
call-dense, higher-order, data-structure heavy symbolic programs rather
than arithmetic kernels.

* ``meta``    — a meta-circular Scheme evaluator interpreting a small
  program suite (the "compiler running on itself" flavour).
* ``matcher`` — a unification-based term rewriter normalizing a batch
  of terms (the Similix/SoftScheme flavour: traversal + environments).
"""

from __future__ import annotations

from typing import List


def all_benchmarks() -> List["Benchmark"]:
    from repro.benchsuite.programs import Benchmark

    return [
        Benchmark(
            name="meta",
            source=META,
            expected=None,
            description="meta-circular evaluator running a program suite",
            scaling="substitute for the paper's Compiler/DDD workloads",
        ),
        Benchmark(
            name="matcher",
            source=MATCHER,
            expected=None,
            description="unification-based term rewriting to normal form",
            scaling="substitute for the paper's Similix/SoftScheme workloads",
        ),
    ]


META = """
;; A meta-circular evaluator for a first-order-ish Scheme subset,
;; itself running three little programs.

(define (lookup var env)
  (cond ((null? env) (error "unbound" var))
        ((eq? (caar env) var) (cdar env))
        (else (lookup var (cdr env)))))

(define (extend env vars vals)
  (if (null? vars)
      env
      (extend (cons (cons (car vars) (car vals)) env)
              (cdr vars) (cdr vals))))

(define (evaluate expr env)
  (cond ((symbol? expr) (lookup expr env))
        ((number? expr) expr)
        ((eq? (car expr) 'quote) (cadr expr))
        ((eq? (car expr) 'if)
         (if (evaluate (cadr expr) env)
             (evaluate (caddr expr) env)
             (evaluate (cadddr expr) env)))
        ((eq? (car expr) 'lambda)
         (list 'closure (cadr expr) (caddr expr) env))
        ((eq? (car expr) 'letrec)
         (evaluate-letrec (cadr expr) (caddr expr) env))
        (else
         (apply-proc (evaluate (car expr) env)
                     (evaluate-list (cdr expr) env)))))

(define (evaluate-list exprs env)
  (if (null? exprs)
      '()
      (cons (evaluate (car exprs) env)
            (evaluate-list (cdr exprs) env))))

(define (evaluate-letrec bindings body env)
  ;; letrec via a mutable rib
  (let ((rib (map (lambda (b) (cons (car b) 'undefined)) bindings)))
    (let ((env2 (append rib env)))
      (for-each (lambda (b)
                  (let ((cell (assq (car b) rib)))
                    (set-cdr! cell (evaluate (cadr b) env2))))
                bindings)
      (evaluate body env2))))

(define (apply-proc proc args)
  (cond ((and (pair? proc) (eq? (car proc) 'closure))
         (evaluate (caddr proc)
                   (extend (cadddr proc) (cadr proc) args)))
        ((eq? proc 'prim+) (+ (car args) (cadr args)))
        ((eq? proc 'prim-) (- (car args) (cadr args)))
        ((eq? proc 'prim*) (* (car args) (cadr args)))
        ((eq? proc 'prim<) (< (car args) (cadr args)))
        ((eq? proc 'prim=) (= (car args) (cadr args)))
        ((eq? proc 'primcons) (cons (car args) (cadr args)))
        ((eq? proc 'primcar) (car (car args)))
        ((eq? proc 'primcdr) (cdr (car args)))
        ((eq? proc 'primnull?) (null? (car args)))
        (else (error "bad procedure" proc))))

(define global-env
  '((+ . prim+) (- . prim-) (* . prim*) (< . prim<) (= . prim=)
    (cons . primcons) (car . primcar) (cdr . primcdr)
    (null? . primnull?)))

(define fib-program
  '(letrec ((fib (lambda (n)
                   (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))))
     (fib 11)))

(define map-program
  '(letrec ((mymap (lambda (f ls)
                     (if (null? ls)
                         (quote ())
                         (cons (f (car ls)) (mymap f (cdr ls))))))
            (build (lambda (n)
                     (if (= n 0) (quote ()) (cons n (build (- n 1)))))))
     (mymap (lambda (x) (* x x)) (build 20))))

(define tak-program
  '(letrec ((tak (lambda (x y z)
                   (if (< y x)
                       (tak (tak (- x 1) y z)
                            (tak (- y 1) z x)
                            (tak (- z 1) x y))
                       z))))
     (tak 8 4 0)))

(define (run-suite n)
  (let loop ((i n) (acc 0))
    (if (zero? i)
        acc
        (loop (- i 1)
              (+ acc
                 (+ (evaluate fib-program global-env)
                    (+ (length (evaluate map-program global-env))
                       (evaluate tak-program global-env))))))))
(run-suite 2)
"""

MATCHER = """
;; A unification-based rewriter: normalizes arithmetic/logic terms with
;; a rule database, using substitution environments throughout.

(define (variable? x)
  (and (symbol? x)
       (char=? (string-ref (symbol->string x) 0) #\\?)))

(define (unify pat term subst)
  (cond ((eq? subst 'fail) 'fail)
        ((variable? pat)
         (let ((bound (assq pat subst)))
           (cond (bound (if (equal? (cdr bound) term) subst 'fail))
                 (else (cons (cons pat term) subst)))))
        ((and (pair? pat) (pair? term))
         (unify (cdr pat) (cdr term) (unify (car pat) (car term) subst)))
        ((equal? pat term) subst)
        (else 'fail)))

(define (substitute term subst)
  (cond ((variable? term)
         (let ((bound (assq term subst)))
           (if bound (cdr bound) term)))
        ((pair? term)
         (cons (substitute (car term) subst)
               (substitute (cdr term) subst)))
        (else term)))

(define rules
  '(((+ ?x 0) ?x)
    ((+ 0 ?x) ?x)
    ((* ?x 1) ?x)
    ((* 1 ?x) ?x)
    ((* ?x 0) 0)
    ((* 0 ?x) 0)
    ((- ?x 0) ?x)
    ((- ?x ?x) 0)
    ((+ ?x ?x) (* 2 ?x))
    ((and true ?x) ?x)
    ((and ?x true) ?x)
    ((and false ?x) false)
    ((or false ?x) ?x)
    ((or ?x false) ?x)
    ((or true ?x) true)
    ((not (not ?x)) ?x)
    ((if true ?a ?b) ?a)
    ((if false ?a ?b) ?b)
    ((* ?x (+ ?y ?z)) (+ (* ?x ?y) (* ?x ?z)))))

(define (rewrite-once term)
  (let loop ((rs rules))
    (if (null? rs)
        #f
        (let ((subst (unify (caar rs) term '())))
          (if (eq? subst 'fail)
              (loop (cdr rs))
              (substitute (cadr (car rs)) subst))))))

(define (normalize term)
  (let ((term2 (if (pair? term)
                   (cons (car term) (map normalize (cdr term)))
                   term)))
    (let ((next (rewrite-once term2)))
      (if next (normalize next) term2))))

(define (term-size x)
  (if (pair? x)
      (+ 1 (+ (term-size (car x)) (term-size (cdr x))))
      1))

(define test-terms
  '((+ (* a 1) 0)
    (* (+ x 0) (+ y (* z 0)))
    (if (and true (or false true)) (+ b b) (* c 0))
    (* (+ p q) (+ r 1))
    (- (+ m 0) (+ m 0))
    (not (not (and true (or false x))))
    (* 2 (* (+ u 0) (+ v v)))
    (if (not (not false)) yes (+ no 0))))

(define (matcher-run n)
  (let loop ((i n) (acc 0))
    (if (zero? i)
        acc
        (loop (- i 1)
              (fold-left (lambda (a t) (+ a (term-size (normalize t))))
                         acc
                         test-terms)))))
(matcher-run 40)
"""
