"""Targeted microbenchmarks for individual allocator mechanisms.

The Gabriel programs rarely exercise some of the paper's corner cases
dynamically; these micros isolate them.
"""

from __future__ import annotations

from typing import List


def all_benchmarks() -> List["Benchmark"]:
    from repro.benchsuite.programs import Benchmark

    return [
        Benchmark(
            name="shortcircuit",
            source=SHORTCIRCUIT,
            expected=None,
            description=(
                "calls reached through short-circuit tests: the §2.1.2 "
                "pattern where the revised St/Sf algorithm saves once "
                "but the simple algorithm saves per call"
            ),
            scaling="synthetic microbenchmark (not in the paper's suite)",
            paper=False,
        ),
        Benchmark(
            name="shuffle-cycles",
            source=SHUFFLE_CYCLES,
            expected=None,
            description=(
                "argument-register permutations at every call site: "
                "worst case for the §2.3 shuffler"
            ),
            scaling="synthetic microbenchmark (not in the paper's suite)",
            paper=False,
        ),
    ]


SHORTCIRCUIT = """
;; Every f activation takes the path through BOTH the call inside the
;; test and the call in the else arm, the §3.2 worked example's shape:
;; the simple algorithm saves the live registers around each call,
;; the revised algorithm hoists a single save.
(define (h n) (even? n))
(define (k n) (+ n 1))
(define (f x y)
  (+ 0 (if (if x (h y) #f)
           y
           (k y))))
(define (g p q r)
  (if (and p (h q))
      (k r)
      (+ 1 (k (+ q r)))))
(let loop ((i 0) (acc 0))
  (if (= i 3000)
      acc
      (loop (+ i 1)
            (remainder (+ acc (+ (f #t i) (g (odd? i) i 7))) 1000003))))
"""

SHUFFLE_CYCLES = """
;; Each call permutes its six argument registers with long cycles.
(define (sink a b c d e f) (+ a (+ b (+ c (+ d (+ e f))))))
(define (rot6 a b c d e f n)
  (if (zero? n)
      (sink a b c d e f)
      (rot6 b c d e f a (- n 1))))
(define (swapper a b c d e f n)
  (if (zero? n)
      (sink a b c d e f)
      (swapper b a d c f e (- n 1))))
(define (crossover a b c d e f n)
  (if (zero? n)
      (sink a b c d e f)
      (crossover f e d c b a (- n 1))))
(+ (rot6 1 2 3 4 5 6 2000)
   (+ (swapper 1 2 3 4 5 6 2000)
      (crossover 1 2 3 4 5 6 2000)))
"""
