"""Orchestration of the register-allocation passes over a program.

Per code object, in order:

0. parameter placement + liveness           (``repro.core.liveness``)
1. binding assignment by the configured
   :class:`~repro.alloc.base.AllocatorStrategy` (``lazy`` /
   ``linearscan`` / ``graphcolor``)
2. St/Sf analysis, branch-prediction annotation, save placement,
   shuffle planning                         (``savesets``/``saveplace``/``shuffle``)
3. redundant-save elimination + restores    (``restoreplace``)

Only step 1 varies by strategy: the save/restore/shuffle machinery
depends on *which* variables are register-resident, not on how the
registers were chosen, so the paper's lazy-save and eager-restore
placements apply unchanged to the rival assignments (and the ablation
tables measure exactly that difference).

The paper implements its passes as two linear traversals (§3); the
decomposition here is finer-grained but each sub-pass is still linear
in the program size (the shuffler's :math:`O(n^3)` is over the fixed
number of argument registers, §3.1).
"""

from __future__ import annotations

import time
from typing import Dict

from repro.alloc.base import StrategyStats, get_strategy
from repro.alloc.model import build_model, verify_assignment
from repro.astnodes import Call, CodeObject, If, Program, walk
from repro.config import CompilerConfig
from repro.core.liveness import (
    CodeAllocation,
    analyze_liveness,
    collect_register_vars,
)
from repro.core.registers import RegisterFile
from repro.core.restoreplace import place_restores
from repro.core.saveplace import place_saves
from repro.core.savesets import SaveAnalysis
from repro.core.shuffle import plan_shuffle
from repro.observe import REGISTRY
from repro.observe.catalog import declare


class ProgramAllocation:
    """The result of register allocation for a whole program."""

    def __init__(self, regfile: RegisterFile, strategy: str = "lazy") -> None:
        self.regfile = regfile
        self.strategy = strategy
        self.by_code: Dict[int, CodeAllocation] = {}
        self.analyses: Dict[int, SaveAnalysis] = {}
        #: Register/spill outcomes over every binding variable, summed
        #: across code objects (``spilled`` feeds ``repro_alloc_spills``
        #: and the ablation tables' static-spill column).
        self.stats = StrategyStats()
        self.pass_times: Dict[str, float] = {
            "liveness": 0.0,
            "assign": 0.0,
            "save-placement": 0.0,
            "restore-placement": 0.0,
            "shuffle": 0.0,
        }

    def alloc_for(self, code: CodeObject) -> CodeAllocation:
        return self.by_code[code.uid]

    def analysis_for(self, code: CodeObject) -> SaveAnalysis:
        return self.analyses[code.uid]


def allocate_program(program: Program, config: CompilerConfig) -> ProgramAllocation:
    """Run all allocation passes over *program* (mutates the ASTs)."""
    strategy = get_strategy(config.allocator)
    regfile = RegisterFile(
        config.num_arg_regs,
        config.num_temp_regs,
        callee_save_temps=(config.save_convention == "callee"),
    )
    result = ProgramAllocation(regfile, strategy=strategy.name)
    t_start = time.perf_counter()
    for code in program.codes:
        _allocate_code(code, config, result, strategy)
    if REGISTRY.enabled:
        _observe_allocation(program, result, time.perf_counter() - t_start)
    return result


def _allocate_code(
    code: CodeObject,
    config: CompilerConfig,
    result: ProgramAllocation,
    strategy,
) -> None:
    times = result.pass_times

    t0 = time.perf_counter()
    alloc = analyze_liveness(code, result.regfile)
    times["liveness"] += time.perf_counter() - t0

    t0 = time.perf_counter()
    model = build_model(alloc) if strategy.needs_model else None
    result.stats.absorb(strategy.assign(alloc, model, config))
    if strategy.verify and model is not None:
        verify_assignment(model)
    collect_register_vars(alloc)
    times["assign"] += time.perf_counter() - t0

    t0 = time.perf_counter()
    analysis = SaveAnalysis(alloc)
    analysis.analyze()
    if config.branch_prediction == "static-calls":
        _annotate_predictions(code, analysis)
    place_saves(alloc, analysis, config)
    times["save-placement"] += time.perf_counter() - t0

    t0 = time.perf_counter()
    place_restores(alloc, config)
    times["restore-placement"] += time.perf_counter() - t0

    t0 = time.perf_counter()
    for node in walk(code.body):
        if isinstance(node, Call):
            node.shuffle_plan = plan_shuffle(node, alloc, config.shuffle_strategy)
    times["shuffle"] += time.perf_counter() - t0

    result.by_code[code.uid] = alloc
    result.analyses[code.uid] = analysis


def _annotate_predictions(code: CodeObject, analysis: SaveAnalysis) -> None:
    """The §6 static branch-prediction heuristic: "paths without calls
    are assumed to be more likely than paths with calls" — predict the
    branch that can complete without calling."""
    from repro.core.shuffle import contains_call

    for node in walk(code.body):
        if not isinstance(node, If):
            continue
        then_calls = contains_call(node.then)
        else_calls = contains_call(node.otherwise)
        if then_calls and not else_calls:
            node.prediction = "else"
        elif else_calls and not then_calls:
            node.prediction = "then"


def _observe_allocation(
    program: Program, result: ProgramAllocation, seconds: float
) -> None:
    """Feed the strategy's outcomes into the metrics registry.  Only
    called when the registry is enabled, so the normal compile path
    never pays for the extra tree walk."""
    declare(REGISTRY, "repro_alloc_spills").inc(result.stats.spilled)
    moves = 0
    for code in program.codes:
        for node in walk(code.body):
            if isinstance(node, Call) and node.shuffle_plan is not None:
                moves += len(node.shuffle_plan.steps)
    declare(REGISTRY, "repro_alloc_moves").inc(moves)
    declare(REGISTRY, "repro_alloc_strategy_seconds").labels(
        strategy=result.strategy
    ).observe(seconds)
