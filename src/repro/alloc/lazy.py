"""The paper's allocator as a strategy: scope-driven first-free
assignment (§1–2 of Burger, Waddell & Dybvig).

This is a thin adapter over ``repro.core.liveness.assign_bindings`` —
the exact code the pipeline ran before the strategy arena existed — so
selecting ``lazy`` (the default) produces bit-identical assignments,
and therefore bit-identical saves/restores/shuffles, to the pre-arena
compiler.  It opts out of the allocation model and the post-assignment
verification pass: both are pure overhead on a path whose behaviour is
pinned by the tier-1 suite and the benchmark goldens.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.alloc.base import AllocatorStrategy, StrategyStats, register_strategy
from repro.astnodes import Fix, Let, walk
from repro.core.liveness import assign_bindings
from repro.core.locations import FrameSlot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.alloc.model import AllocationModel
    from repro.config import CompilerConfig
    from repro.core.liveness import CodeAllocation


def binding_stats(alloc: "CodeAllocation") -> StrategyStats:
    """Tally register/spill outcomes over the binding variables of an
    already-assigned procedure."""
    stats = StrategyStats()
    for node in walk(alloc.code.body):
        if isinstance(node, Let):
            bound = (node.var,)
        elif isinstance(node, Fix):
            bound = tuple(node.vars)
        else:
            continue
        for var in bound:
            stats.candidates += 1
            if isinstance(var.location, FrameSlot):
                stats.spilled += 1
            else:
                stats.assigned += 1
    return stats


@register_strategy
class LazyStrategy(AllocatorStrategy):
    """First free register in scope order; temporaries before idle
    argument registers; spill when none is free."""

    name = "lazy"
    needs_model = False
    verify = False

    def assign(
        self,
        alloc: "CodeAllocation",
        model: Optional["AllocationModel"],
        config: "CompilerConfig",
    ) -> StrategyStats:
        assign_bindings(alloc)
        return binding_stats(alloc)
