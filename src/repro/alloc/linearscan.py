"""Linear-scan rival: second-chance binpacking over lifetime intervals.

After Traub, Holloway & Smith ("Quality and Speed in Linear-scan
Register Allocation"), adapted to this compiler's whole-lifetime
location model: every variable has exactly one home for its entire
life (a register or a frame slot), because the downstream lazy-save /
eager-restore / shuffle passes key off ``var.location``, not off
program points.  That adaptation shapes the algorithm:

* **Binpacking with lifetime holes.**  Each register is a bin packed
  with any number of *disjoint* live intervals (Traub's central idea):
  a variable whose life ends before another begins shares its register,
  including the holes left by argument registers once the incoming
  parameter dies.
* **Second chance = spill the furthest end.**  When no bin has room,
  the conflicting lifetime that ends furthest away is the one that goes
  to the stack.  If that is the newcomer, it spills; if it is an
  already-packed temporary, the newcomer takes its bin and the evicted
  variable's "second chance" is its frame home — the whole-lifetime
  analogue of Traub's split-and-respill, since splitting a lifetime in
  two locations is not expressible here.

Intervals come from :mod:`repro.alloc.model`, whose linearization is
conservative w.r.t. the busy-set interference the shared downstream
passes assume (see that module's docstring), so any overlap-respecting
packing is sound.  Parameters are precolored by the calling convention
and reserve their bins up to their last use; they are never evicted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.alloc.base import AllocatorStrategy, StrategyStats, register_strategy
from repro.core.registers import Register
from repro.errors import CompilerError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.alloc.model import AllocationModel, BindingSite
    from repro.config import CompilerConfig
    from repro.core.liveness import CodeAllocation


@dataclass
class _Packed:
    """One interval packed into a register bin."""

    start: int
    end: int
    site: Optional["BindingSite"]  # None for a precolored parameter


def _overlaps(a_start: int, a_end: int, b_start: int, b_end: int) -> bool:
    return a_start <= b_end and b_start <= a_end


@register_strategy
class LinearScanStrategy(AllocatorStrategy):
    """Second-chance binpacking in one pass over binding order."""

    name = "linearscan"
    needs_model = True
    verify = True

    def assign(
        self,
        alloc: "CodeAllocation",
        model: Optional["AllocationModel"],
        config: "CompilerConfig",
    ) -> StrategyStats:
        if model is None:
            raise CompilerError("linearscan requires the allocation model")
        regfile = alloc.regfile
        order = (*regfile.temp_regs, *regfile.arg_regs)
        bins: Dict[Register, List[_Packed]] = {reg: [] for reg in order}
        # Parameters reserve their convention-assigned bins until their
        # last use; an unused parameter's register is free from entry.
        for param, end in model.param_end.items():
            if end > 0 and param.location in bins:
                bins[param.location].append(_Packed(0, end, None))

        stats = StrategyStats()
        # Sites arrive in binding (pre-order) order, so starts are
        # non-decreasing — the classic scan order.
        for site in model.sites:
            stats.candidates += 1
            chosen: Optional[Register] = None
            for reg in order:
                if not any(
                    _overlaps(site.start, site.end, p.start, p.end)
                    for p in bins[reg]
                ):
                    chosen = reg
                    break
            if chosen is not None:
                site.var.location = chosen
                bins[chosen].append(_Packed(site.start, site.end, site))
                stats.assigned += 1
                continue
            self._second_chance(site, bins, order, alloc, stats)
        return stats

    def _second_chance(
        self,
        site: "BindingSite",
        bins: Dict[Register, List[_Packed]],
        order: tuple,
        alloc: "CodeAllocation",
        stats: StrategyStats,
    ) -> None:
        """No bin has a hole: spill whichever conflicting lifetime ends
        furthest.  Evicting an occupant is only possible when it is the
        *sole* conflict in its bin and is not a precolored parameter."""
        victim_reg: Optional[Register] = None
        victim: Optional[_Packed] = None
        for reg in order:
            conflicts = [
                p
                for p in bins[reg]
                if _overlaps(site.start, site.end, p.start, p.end)
            ]
            if len(conflicts) != 1 or conflicts[0].site is None:
                continue
            p = conflicts[0]
            # Fix siblings must stay in distinct registers; taking a
            # sibling's bin would merely move the conflict.
            if p.site.var in site.group:
                continue
            if victim is None or p.end > victim.end:
                victim, victim_reg = p, reg
        if victim is not None and victim.end > site.end:
            evicted = victim.site
            assert evicted is not None and victim_reg is not None
            bins[victim_reg].remove(victim)
            evicted.var.location = alloc.layout.alloc(
                f"spill:{evicted.var.name}"
            )
            stats.assigned -= 1
            stats.spilled += 1
            site.var.location = victim_reg
            bins[victim_reg].append(_Packed(site.start, site.end, site))
            stats.assigned += 1
        else:
            site.var.location = alloc.layout.alloc(f"spill:{site.var.name}")
            stats.spilled += 1
