"""``repro.alloc`` — the pluggable allocator arena.

The paper's register allocator (lazy saves, eager restores, greedy
shuffling) competes here against two classic rivals behind one
:class:`~repro.alloc.base.AllocatorStrategy` interface:

* ``lazy`` — the paper's scope-driven first-free assignment (default;
  bit-identical to the pre-arena compiler);
* ``linearscan`` — second-chance binpacking over lifetime intervals
  (Traub, Holloway & Smith);
* ``graphcolor`` — Chaitin-Briggs coloring with move biasing and
  iterated spill-cost recomputation.

``CompilerConfig.allocator`` selects the strategy; the driver
(:mod:`repro.alloc.driver`) runs the shared liveness /
save-placement / restore-placement / shuffle passes around whichever
binding assignment the strategy produces.  See ``docs/allocators.md``
for the interface contract and a worked three-way example.
"""

from repro.alloc.base import (
    AllocatorStrategy,
    StrategyStats,
    available_strategies,
    get_strategy,
    register_strategy,
)
from repro.alloc.driver import ProgramAllocation, allocate_program
from repro.alloc.model import AllocationModel, BindingSite, build_model

# Importing the strategy modules registers them.
from repro.alloc import lazy as _lazy  # noqa: F401
from repro.alloc import linearscan as _linearscan  # noqa: F401
from repro.alloc import graphcolor as _graphcolor  # noqa: F401

__all__ = [
    "AllocationModel",
    "AllocatorStrategy",
    "BindingSite",
    "ProgramAllocation",
    "StrategyStats",
    "allocate_program",
    "available_strategies",
    "build_model",
    "get_strategy",
    "register_strategy",
]
