"""Graph-coloring rival: Chaitin-Briggs with move biasing.

Classic Chaitin allocation with Briggs' optimistic twist: build the
interference graph, repeatedly *simplify* (remove trivially colorable
nodes, degree < K), push would-be spills on the stack anyway instead of
spilling immediately, and discover in the *select* phase whether a
color really ran out.  Spill costs are Chaitin's ``uses / (degree+1)``;
after an actual spill the graph is rebuilt without the spilled nodes
and costs/degrees recomputed, iterating until a full coloring of the
surviving nodes succeeds (the "iterated spill-cost recomputation" of
the Briggs lineage).

Interference comes straight from the liveness pass's ``busy`` sets —
the exact constraint system the paper's lazy strategy obeys — plus
cliques over simultaneously-bound ``fix`` siblings.  Parameters are
precolored by the calling convention and appear as fixed colors on
their neighbours.

**Move biasing.**  The greedy shuffler turns a call argument already
sitting in its argument register into a no-op move, so during select
each node prefers, among its allowed colors, the argument register it
is most often passed in (``AllocationModel.affinity``).  This is the
biased-coloring form of move coalescing: copies are removed by color
choice rather than by merging nodes, which keeps the graph build
simple and can never introduce new spills.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.alloc.base import AllocatorStrategy, StrategyStats, register_strategy
from repro.astnodes import Var
from repro.core.registers import Register
from repro.errors import CompilerError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.alloc.model import AllocationModel
    from repro.config import CompilerConfig
    from repro.core.liveness import CodeAllocation


@register_strategy
class GraphColorStrategy(AllocatorStrategy):
    """Chaitin-Briggs simplify/select with affinity-biased colors."""

    name = "graphcolor"
    needs_model = True
    verify = True

    def assign(
        self,
        alloc: "CodeAllocation",
        model: Optional["AllocationModel"],
        config: "CompilerConfig",
    ) -> StrategyStats:
        if model is None:
            raise CompilerError("graphcolor requires the allocation model")
        regfile = alloc.regfile
        palette: List[Register] = [*regfile.temp_regs, *regfile.arg_regs]
        palette_set = set(palette)
        k = len(palette)

        stats = StrategyStats()
        stats.candidates = len(model.sites)
        nodes = [site.var for site in model.sites]
        node_set = set(nodes)
        refs = {site.var: site.refs for site in model.sites}

        # Interference: busy-set edges plus fix-sibling cliques, with
        # precolored parameter registers as fixed colors on neighbours.
        adj: Dict[Var, Set[Var]] = {v: set() for v in nodes}
        fixed: Dict[Var, Set[Register]] = {v: set() for v in nodes}
        for site in model.sites:
            v = site.var
            for w in site.busy:
                if w in node_set:
                    adj[v].add(w)
                    adj[w].add(v)
                elif isinstance(w.location, Register) and w.location in palette_set:
                    fixed[v].add(w.location)
            for sibling in site.group:
                if sibling is not v and sibling in node_set:
                    adj[v].add(sibling)
                    adj[sibling].add(v)

        # Per-node color preference from call-argument affinities.
        prefer: Dict[Var, Dict[Register, int]] = {}
        for (var, index), count in model.affinity.items():
            if var in node_set and index < len(regfile.arg_regs):
                reg = regfile.arg_regs[index]
                if reg in palette_set:
                    prefer.setdefault(var, {})[reg] = (
                        prefer.get(var, {}).get(reg, 0) + count
                    )

        spilled: Set[Var] = set()
        colors: Dict[Var, Register] = {}
        if k == 0:
            spilled = set(nodes)
        else:
            while True:
                colors = {}
                new_spills = self._color_round(
                    nodes, adj, fixed, refs, palette, spilled, prefer, colors
                )
                if not new_spills:
                    break
                # An actual spill shrinks the graph; rebuild degrees
                # and costs and try the survivors again.
                spilled |= new_spills

        for site in model.sites:
            var = site.var
            if var in spilled:
                var.location = alloc.layout.alloc(f"spill:{var.name}")
                stats.spilled += 1
            else:
                var.location = colors[var]
                stats.assigned += 1
        return stats

    @staticmethod
    def _color_round(
        nodes: List[Var],
        adj: Dict[Var, Set[Var]],
        fixed: Dict[Var, Set[Register]],
        refs: Dict[Var, int],
        palette: List[Register],
        spilled: Set[Var],
        prefer: Dict[Var, Dict[Register, int]],
        colors: Dict[Var, Register],
    ) -> Set[Var]:
        """One simplify/select pass over the unspilled nodes.  Fills
        *colors* and returns the nodes that actually ran out of colors
        (empty set = success)."""
        k = len(palette)
        active = [v for v in nodes if v not in spilled]
        active_set = set(active)

        def degree(v: Var) -> int:
            return len(adj[v] & active_set) + len(fixed[v])

        stack: List[Var] = []
        work = set(active)
        while work:
            simplifiable = [v for v in work if degree(v) < k]
            if simplifiable:
                # Deterministic: lowest uid among trivially colorable.
                v = min(simplifiable, key=lambda v: v.uid)
            else:
                # Spill candidate by Chaitin cost, pushed optimistically
                # (Briggs): it may still color if its neighbours happen
                # to share colors.
                v = min(
                    work,
                    key=lambda v: (refs[v] / (degree(v) + 1), v.uid),
                )
            work.discard(v)
            active_set.discard(v)
            stack.append(v)

        failed: Set[Var] = set()
        while stack:
            v = stack.pop()
            forbidden = set(fixed[v])
            for w in adj[v]:
                if w in colors:
                    forbidden.add(colors[w])
            allowed = [c for c in palette if c not in forbidden]
            if not allowed:
                failed.add(v)
                continue
            scores = prefer.get(v)
            if scores:
                best = max(scores.get(c, 0) for c in allowed)
                if best > 0:
                    allowed = [c for c in allowed if scores.get(c, 0) == best]
            colors[v] = allowed[0]
        return failed
