"""The allocator-strategy interface.

A strategy owns one decision: which register (or frame slot) each
let/fix-bound variable lives in.  Everything around that decision is
shared machinery — parameter placement is fixed by the calling
convention, liveness is computed once (``repro.core.liveness``), and
the lazy-save / eager-restore / greedy-shuffle passes run downstream of
*any* assignment, because they depend only on which variables are
register-resident, not on how those registers were chosen.

Inputs a strategy sees:

* the per-procedure :class:`~repro.core.liveness.CodeAllocation`
  (core AST + liveness annotations + the convention-placed parameters),
* an :class:`~repro.alloc.model.AllocationModel` (binding sites with
  interference/busy sets, linearized live intervals, use counts, and
  call-argument affinities) when the strategy asks for one,
* the :class:`~repro.config.CompilerConfig`.

Outputs: ``var.location`` set on every binding variable (a
:class:`~repro.core.registers.Register` or a
:class:`~repro.core.locations.FrameSlot` spill home) and a
:class:`StrategyStats` accounting of the spill decisions.  Save and
restore placements and shuffle plans are produced by the shared passes
the driver runs next (see ``repro.alloc.driver``).

Strategies register themselves by name; ``CompilerConfig.allocator``
selects one.  The names here and ``config.ALLOCATOR_STRATEGIES`` are
kept in sync by a test.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Type

from repro.errors import CompilerError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.alloc.model import AllocationModel
    from repro.config import CompilerConfig
    from repro.core.liveness import CodeAllocation


@dataclass
class StrategyStats:
    """What one strategy did to one procedure's binding variables."""

    candidates: int = 0  # binding variables the strategy placed
    assigned: int = 0  # of those, how many got registers
    spilled: int = 0  # of those, how many got frame slots

    def absorb(self, other: "StrategyStats") -> None:
        self.candidates += other.candidates
        self.assigned += other.assigned
        self.spilled += other.spilled


class AllocatorStrategy(ABC):
    """One register-assignment algorithm behind the common interface."""

    #: The ``CompilerConfig.allocator`` name selecting this strategy.
    name: str = ""

    #: Whether the driver should build an :class:`AllocationModel`
    #: (binding sites, intervals, affinities) before calling
    #: :meth:`assign`.  The paper's lazy strategy works straight off the
    #: liveness annotations and skips the model entirely, keeping the
    #: default compile path byte-for-byte what it was pre-arena.
    needs_model: bool = True

    #: Whether the driver should cross-check the finished assignment
    #: against the interference model (register sharing between
    #: simultaneously-live variables is a compiler bug, not a
    #: performance problem).  On for the rivals, off for the proven
    #: paper strategy.
    verify: bool = True

    @abstractmethod
    def assign(
        self,
        alloc: "CodeAllocation",
        model: Optional["AllocationModel"],
        config: "CompilerConfig",
    ) -> StrategyStats:
        """Set ``var.location`` for every binding variable of
        ``alloc.code`` and return the spill accounting."""


_REGISTRY: Dict[str, Type[AllocatorStrategy]] = {}


def register_strategy(cls: Type[AllocatorStrategy]) -> Type[AllocatorStrategy]:
    """Class decorator: make *cls* selectable by its ``name``."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no strategy name")
    _REGISTRY[cls.name] = cls
    return cls


def available_strategies() -> tuple:
    """Registered strategy names, in registration order."""
    return tuple(_REGISTRY)


def get_strategy(name: str) -> AllocatorStrategy:
    """Instantiate the strategy registered as *name*.

    ``CompilerConfig`` validates the name at construction, so reaching
    this error means a config bypassed validation — still a one-line
    diagnostic, not a traceback."""
    cls = _REGISTRY.get(name)
    if cls is None:
        raise CompilerError(
            f"unknown allocator: {name!r} "
            f"(choose from {', '.join(_REGISTRY)})"
        )
    return cls()
