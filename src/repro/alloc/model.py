"""The shared allocation model rival strategies consume.

The paper's lazy strategy assigns registers scope-by-scope straight off
the ``busy`` sets the liveness pass leaves on ``Let``/``Fix`` nodes, so
it needs nothing further.  Linear scan wants linearized live intervals;
graph coloring wants an interference relation, use counts for spill
costs, and move affinities.  This module derives all of that in one
extra walk, performed only when the selected strategy asks for it
(``AllocatorStrategy.needs_model``), so the default path does no extra
work.

**Linearization.**  The core language is tree-shaped (no loops — the
source's loops are recursive calls to separate code objects), so a
pre-order numbering of the body is a valid linear order and a
variable's live interval is ``[binding position, last use position]``.
Two wrinkles make the intervals conservative enough to subsume the
``busy``-set interference the downstream save/restore/shuffle passes
assume:

* *Deferred primitive operands.*  The code generator reads top-level
  variable operands of a primitive at issue time — after any embedded
  call — so those reads are recorded at a position *after* the whole
  ``PrimCall`` subtree (mirroring ``_split_prim_operands`` in the
  liveness pass).
* *Call operands.*  The greedy shuffler may evaluate and move call
  operands in any order, so every variable referenced by any operand
  stays live until the call issues: their last uses are extended to a
  position after the whole ``Call`` subtree.

With those two extensions, interval overlap is a superset of the
busy-set interference relation: any assignment that keeps overlapping
intervals in distinct registers is sound for the shared downstream
passes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Tuple

from repro.astnodes import (
    Call,
    ClosureRef,
    Expr,
    Fix,
    If,
    Let,
    MakeClosure,
    PrimCall,
    Quote,
    Ref,
    Seq,
    Var,
)
from repro.core.liveness import referenced_vars, split_prim_operands
from repro.core.registers import Register
from repro.errors import CompilerError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import CompilerConfig
    from repro.core.liveness import CodeAllocation


@dataclass
class BindingSite:
    """One let/fix-bound variable awaiting a location."""

    var: Var
    #: Variables live during this variable's scope (the liveness pass's
    #: ``busy`` annotation) — the interference neighbourhood.
    busy: FrozenSet[Var]
    #: Simultaneously-bound fix siblings (including ``var`` itself);
    #: a singleton for ``let``.  Siblings must get distinct registers.
    group: Tuple[Var, ...]
    #: Pre-order position of the binding point.
    start: int
    #: Position of the last use (``>= start``; equal when unused).
    end: int
    #: Number of uses — the numerator of the Chaitin spill cost.
    refs: int


@dataclass
class AllocationModel:
    """Everything a rival strategy needs about one procedure."""

    #: Binding sites in source (assignment) order — the order the lazy
    #: strategy visits them, kept for deterministic tie-breaking.
    sites: List[BindingSite]
    #: Last-use position of each register-resident parameter (0 when
    #: the parameter is never used and its register is free from entry).
    param_end: Dict[Var, int]
    #: ``(var, argument index) -> count`` of calls passing ``var``
    #: unchanged as argument *index*: assigning ``var`` the matching
    #: argument register turns that shuffle move into a no-op.
    affinity: Dict[Tuple[Var, int], int]
    #: Total number of positions in the linearization.
    length: int


class _ModelBuilder:
    def __init__(self, alloc: "CodeAllocation") -> None:
        self.alloc = alloc
        self.pos = 0
        self.last_use: Dict[Var, int] = {}
        self.refs: Dict[Var, int] = {}
        self.sites: List[BindingSite] = []
        self.affinity: Dict[Tuple[Var, int], int] = {}

    def bump(self) -> int:
        self.pos += 1
        return self.pos

    def use(self, var: Var, pos: int) -> None:
        self.refs[var] = self.refs.get(var, 0) + 1
        if pos > self.last_use.get(var, -1):
            self.last_use[var] = pos

    def visit(self, expr: Expr) -> None:
        alloc = self.alloc
        if isinstance(expr, Quote):
            self.bump()
            return
        if isinstance(expr, Ref):
            self.use(expr.var, self.bump())
            return
        if isinstance(expr, ClosureRef):
            self.use(alloc.cp_var, self.bump())
            return
        if isinstance(expr, PrimCall):
            deferred, ordered = split_prim_operands(expr, alloc)
            for arg in ordered:
                self.visit(arg)
            # Top-level variable operands are read when the primitive
            # issues — after everything above, including embedded calls.
            issue = self.bump()
            for var in deferred:
                self.use(var, issue)
            return
        if isinstance(expr, If):
            self.visit(expr.test)
            self.visit(expr.then)
            self.visit(expr.otherwise)
            return
        if isinstance(expr, Let):
            self.visit(expr.rhs)
            start = self.bump()
            self.sites.append(
                BindingSite(
                    var=expr.var,
                    busy=expr.busy,
                    group=(expr.var,),
                    start=start,
                    end=start,
                    refs=0,
                )
            )
            self.visit(expr.body)
            return
        if isinstance(expr, Fix):
            start = self.bump()
            group = tuple(expr.vars)
            for var in group:
                self.sites.append(
                    BindingSite(
                        var=var,
                        busy=expr.busy,
                        group=group,
                        start=start,
                        end=start,
                        refs=0,
                    )
                )
            for closure in expr.lambdas:
                self.visit(closure)
            self.visit(expr.body)
            return
        if isinstance(expr, Call):  # includes CallCC
            subs = [expr.fn, *expr.args]
            for sub in subs:
                self.visit(sub)
            # The shuffler orders operand moves at the call point, so
            # every operand variable must survive until the call
            # issues, whatever order it picks.
            issue = self.bump()
            for sub in subs:
                for var in referenced_vars(sub, alloc):
                    if issue > self.last_use.get(var, -1):
                        self.last_use[var] = issue
            for i, arg in enumerate(expr.args):
                if i >= alloc.regfile.num_arg_regs:
                    break
                if isinstance(arg, Ref):
                    key = (arg.var, i)
                    self.affinity[key] = self.affinity.get(key, 0) + 1
            return
        if isinstance(expr, MakeClosure):
            for sub in expr.free_exprs:
                self.visit(sub)
            return
        if isinstance(expr, Seq):
            for sub in expr.exprs:
                self.visit(sub)
            return
        raise CompilerError(
            f"allocation model: unexpected node {type(expr).__name__}"
        )


def build_model(alloc: "CodeAllocation") -> AllocationModel:
    """Derive the binding sites, live intervals and affinities of one
    procedure from its liveness-annotated body."""
    builder = _ModelBuilder(alloc)
    builder.visit(alloc.code.body)
    for site in builder.sites:
        site.end = max(site.start, builder.last_use.get(site.var, site.start))
        site.refs = builder.refs.get(site.var, 0)
    param_end: Dict[Var, int] = {}
    for param in alloc.code.params:
        if isinstance(param.location, Register):
            param_end[param] = builder.last_use.get(param, 0)
    return AllocationModel(
        sites=builder.sites,
        param_end=param_end,
        affinity=builder.affinity,
        length=builder.pos,
    )


def verify_assignment(model: AllocationModel) -> None:
    """Cross-check a finished assignment against the interference
    model.  A violation is a compiler bug (it would produce wrong code,
    not slow code), so it raises rather than warns."""
    for site in model.sites:
        loc = site.var.location
        if loc is None:
            raise CompilerError(f"variable {site.var!r} was never placed")
        if not isinstance(loc, Register):
            continue
        for other in site.busy:
            if isinstance(other.location, Register) and other.location == loc:
                raise CompilerError(
                    f"allocator bug: {site.var.name} and {other.name} "
                    f"share {loc} while simultaneously live"
                )
        for sibling in site.group:
            if sibling is site.var:
                continue
            if isinstance(sibling.location, Register) and sibling.location == loc:
                raise CompilerError(
                    f"allocator bug: fix siblings {site.var.name} and "
                    f"{sibling.name} share {loc}"
                )
